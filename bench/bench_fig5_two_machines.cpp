// Fig. 5 of the paper: the dummy DRL algorithm deployed in two machines over
// a 1 GbE link measured at 118.04 MB/s.
//
// Paper results (64 MB messages): XingTian with 32 explorers spread 16+16 hits
// 221.73 MB/s (local traffic rides for free beside the NIC-bound remote
// traffic); XingTian with 16 purely-remote explorers saturates the NIC at
// 110.84 MB/s; RLLib with 32 spread explorers only reaches 72.88 MB/s because
// its pull model serializes every transfer with the driver.
//
// Shapes to reproduce: XT-32 > XT-16-remote ~ NIC >= pull-32, and XT-32's
// end-to-end latency ~ XT-16-remote's (the local half is shadowed by the
// cross-machine half).

#include "bench_util.h"

#include "baselines/pull_dummy.h"
#include "framework/dummy_transmission.h"

namespace {

using namespace xt;
using namespace xt::bench;

DummyConfig base(std::size_t bytes, int messages) {
  DummyConfig config;
  config.message_bytes = bytes;
  config.messages_per_explorer = messages;
  config.broker.compression.enabled = false;
  config.broker.ipc_bandwidth_bytes_per_sec = kIpcBandwidth;
  config.link.bandwidth_bytes_per_sec = kNicBandwidth;
  return config;
}

}  // namespace

int main() {
  banner("Fig. 5: Data Transmission in Two Machines (NIC = 118.04 MB/s)");
  std::printf("link: %.2f MB/s (the paper's measured 1GbE bandwidth)\n",
              kNicBandwidth / 1e6);

  std::printf("\n%12s %20s %24s %18s %12s %12s %12s\n", "msg size",
              "XT 16+16 MB/s", "XT 16 remote MB/s", "Pull 16+16 MB/s",
              "XT32 lat(s)", "XTrem lat(s)", "Pull lat(s)");

  struct Point {
    std::size_t bytes;
    int messages;
  };
  for (const Point point : {Point{1024 * 1024, 4}, Point{4 * 1024 * 1024, 3}}) {
    // XingTian, 32 explorers spread 16 + 16 (learner on machine 0).
    DummyConfig xt32 = base(point.bytes, point.messages);
    xt32.explorers_per_machine = {16, 16};
    const DummyResult xt32_result = run_dummy_transmission_xingtian(xt32);

    // XingTian, 16 explorers all on the other machine.
    DummyConfig xt_remote = base(point.bytes, point.messages);
    xt_remote.explorers_per_machine = {0, 16};
    const DummyResult xt_remote_result =
        run_dummy_transmission_xingtian(xt_remote);

    // Pull-based baseline, 32 workers spread 16 + 16 (driver on machine 0).
    DummyConfig pull32 = base(point.bytes, point.messages);
    pull32.explorers_per_machine = {16, 16};
    baselines::RpcConfig rpc;
    rpc.ipc_bandwidth_bytes_per_sec = kIpcBandwidth;
    rpc.link.bandwidth_bytes_per_sec = kNicBandwidth;
    const DummyResult pull_result =
        baselines::run_dummy_transmission_pullhub(pull32, rpc);

    std::printf("%12s %20.2f %24.2f %18.2f %12.3f %12.3f %12.3f\n",
                format_bytes(static_cast<double>(point.bytes)).c_str(),
                xt32_result.throughput_mbps, xt_remote_result.throughput_mbps,
                pull_result.throughput_mbps, xt32_result.end_to_end_seconds,
                xt_remote_result.end_to_end_seconds,
                pull_result.end_to_end_seconds);

    const std::string size_tag =
        format_bytes(static_cast<double>(point.bytes));
    shape_check("XT-32 > XT-16-remote at " + size_tag + " (local rides free)",
                xt32_result.throughput_mbps >
                    1.3 * xt_remote_result.throughput_mbps);
    shape_check("XT-16-remote ~ NIC bandwidth at " + size_tag + " (+-25%)",
                xt_remote_result.throughput_mbps > 0.75 * kNicBandwidth / 1e6 &&
                    xt_remote_result.throughput_mbps <
                        1.25 * kNicBandwidth / 1e6);
    shape_check("XT-32 > pull-32 at " + size_tag + " (paper: 3.04x)",
                xt32_result.throughput_mbps > 1.2 * pull_result.throughput_mbps);
    shape_check(
        "XT-32 latency ~ XT-16-remote latency at " + size_tag +
            " (in-machine traffic shadowed by cross-machine, +-30%)",
        xt32_result.end_to_end_seconds <
            1.3 * xt_remote_result.end_to_end_seconds);
  }

  return finish("bench_fig5_two_machines");
}
