// Table 1 of the paper: time to transmit one training iteration's rollouts
// through the baseline frameworks, against the corresponding training time.
//
// Paper (absolute, Python + V100):
//   PPO    138,585 KB   RLLib 367.81 ms   Launchpad/Reverb 95,765.88 ms   train 1,297.53 ms
//   DQN      1,913 KB   RLLib  54.13 ms   Launchpad/Reverb    811.47 ms   train     8.00 ms
//   IMPALA  13,855 KB   RLLib 301.34 ms   Launchpad/Reverb 12,567.10 ms   train    32.07 ms
//
// Here the payloads are rebuilt at the same wire sizes (frame-carrying
// rollout steps; see DESIGN.md), transmission goes through our pull-based
// (RLLib-model) and buffer-server (Launchpad/Reverb-model) baselines, and
// training times are measured on this host's CPU MLPs. The shape to
// reproduce: for every algorithm, buffer-server transmission >> pull-based
// transmission, and transmission is not negligible against training.

#include "bench_util.h"

#include <cstring>

#include "algo/factory.h"
#include "baselines/buffer_hub.h"
#include "baselines/rpc.h"
#include "common/clock.h"
#include "common/rng.h"
#include "envs/registry.h"

namespace {

using namespace xt;
using namespace xt::bench;

/// Build a rollout fragment with SynthArcade-shaped observations plus the
/// frame payload that gives it the paper's wire size.
RolloutBatch make_fragment(std::size_t steps, std::size_t frame_bytes,
                           std::uint64_t seed) {
  Rng rng(seed);
  RolloutBatch batch;
  batch.steps.reserve(steps);
  for (std::size_t i = 0; i < steps; ++i) {
    RolloutStep step;
    step.observation.resize(128);
    for (auto& v : step.observation) v = static_cast<float>(rng.normal());
    step.action = static_cast<std::int32_t>(rng.uniform_index(4));
    step.reward = static_cast<float>(rng.normal());
    step.behavior_logp = -1.0f;
    fill_frame(step.frame, frame_bytes, i);
    batch.steps.push_back(std::move(step));
  }
  batch.final_observation.assign(128, 0.0f);
  return batch;
}

double measure_pull_ms(const std::vector<Bytes>& messages) {
  baselines::RpcConfig rpc;
  rpc.ipc_bandwidth_bytes_per_sec = kIpcBandwidth;
  baselines::RpcTransport transport(1, rpc);
  const Stopwatch clock;
  for (const Bytes& message : messages) {
    (void)transport.pull(0, message);
  }
  return clock.elapsed_ms();
}

double measure_buffer_ms(const std::vector<Bytes>& messages) {
  baselines::ChunkedTransferConfig transfer;  // Reverb-style chunked RPC
  baselines::BufferServer server(transfer);
  const Stopwatch clock;
  for (const Bytes& message : messages) server.insert(message);
  for (std::size_t i = 0; i < messages.size(); ++i) (void)server.take();
  return clock.elapsed_ms();
}

struct Row {
  const char* name;
  double size_kb;
  double pull_ms;
  double buffer_ms;
  double train_ms;
};

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = "BENCH_table1.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) json_path = argv[++i];
  }
  banner("Table 1: Time to Transmit Rollouts and to Train");

  std::vector<Row> rows;

  // ---- PPO: 10 explorers x 500 Atari-sized steps --------------------------
  {
    std::vector<Bytes> messages;
    PpoConfig config;
    config.hidden = {64, 64};
    config.fragment_len = 500;
    config.n_explorers = 10;
    config.epochs = 4;
    config.minibatch = 512;
    PpoAlgorithm algorithm(config, 128, 4, 1);
    double total_kb = 0;
    for (int e = 0; e < 10; ++e) {
      RolloutBatch fragment = make_fragment(500, kAtariFrameBytes, e);
      fragment.weights_version = algorithm.weights_version();
      Bytes wire = fragment.serialize();
      total_kb += static_cast<double>(wire.size()) / 1024.0;
      algorithm.prepare_data(std::move(fragment));
      messages.push_back(std::move(wire));
    }
    const double pull = measure_pull_ms(messages);
    // Buffer-server measurement on one fragment, scaled to the ten the
    // learner consumes per iteration (keeps the bench under a minute; the
    // transfers are strictly sequential through the server anyway).
    const double buffer = 10.0 * measure_buffer_ms({messages.front()});
    const Stopwatch train_clock;
    (void)algorithm.train();
    rows.push_back({"PPO", total_kb, pull, buffer, train_clock.elapsed_ms()});
  }

  // ---- DQN: one 32-transition training batch ------------------------------
  {
    DqnConfig config;
    config.hidden = {64, 64};
    config.train_start = 64;
    config.batch_size = 32;
    config.frame_bytes_per_step = kAtariFrameBytes;
    DqnAlgorithm algorithm(config, 128, 4, 2);
    RolloutBatch warmup = make_fragment(128, kAtariFrameBytes, 11);
    algorithm.prepare_data(std::move(warmup));
    // The transmitted unit is the sampled batch (32 transitions with frames).
    RolloutBatch batch_sized = make_fragment(32, kAtariFrameBytes, 12);
    const Bytes wire = batch_sized.serialize();
    std::vector<Bytes> messages = {wire};
    const double pull = measure_pull_ms(messages);
    const double buffer = measure_buffer_ms(messages);
    double train_ms = 0;
    while (algorithm.ready_to_train()) {
      const Stopwatch train_clock;
      const auto result = algorithm.train();
      if (result.stats.count("warmup") == 0) {
        train_ms = train_clock.elapsed_ms();
        break;
      }
    }
    rows.push_back({"DQN", static_cast<double>(wire.size()) / 1024.0, pull,
                    buffer, train_ms});
  }

  // ---- IMPALA: one 500-step fragment --------------------------------------
  {
    ImpalaConfig config;
    config.hidden = {64, 64};
    config.fragment_len = 500;
    ImpalaAlgorithm algorithm(config, 128, 4, 3);
    RolloutBatch fragment = make_fragment(500, kAtariFrameBytes, 21);
    const Bytes wire = fragment.serialize();
    std::vector<Bytes> messages = {wire};
    const double pull = measure_pull_ms(messages);
    const double buffer = measure_buffer_ms(messages);
    algorithm.prepare_data(std::move(fragment));
    const Stopwatch train_clock;
    (void)algorithm.train();
    rows.push_back({"IMPALA", static_cast<double>(wire.size()) / 1024.0, pull,
                    buffer, train_clock.elapsed_ms()});
  }

  std::printf("\n%-8s %14s %18s %24s %14s\n", "Algo", "Rollout (KB)",
              "Pull/RLLib (ms)", "Buffer/Launchpad (ms)", "Train (ms)");
  for (const Row& row : rows) {
    std::printf("%-8s %14.1f %18.2f %24.2f %14.2f\n", row.name, row.size_kb,
                row.pull_ms, row.buffer_ms, row.train_ms);
  }

  section("shape checks vs paper Table 1");
  for (const Row& row : rows) {
    shape_check(std::string(row.name) +
                    ": buffer-server transmission >> pull-based (paper: "
                    "Launchpad/Reverb 15-260x RLLib)",
                row.buffer_ms > 3.0 * row.pull_ms);
    shape_check(std::string(row.name) +
                    ": transmission is non-negligible vs training (>10%)",
                row.pull_ms > 0.1 * row.train_ms);
  }
  // Paper: for DQN and IMPALA, transmission in RLLib EXCEEDS training time.
  shape_check("DQN: pull transmission exceeds training time",
              rows[1].pull_ms > rows[1].train_ms);
  shape_check("IMPALA: pull transmission exceeds training time",
              rows[2].pull_ms > rows[2].train_ms);

  // Machine-readable artifact for tools/perf_diff (the checked-in
  // BENCH_table1.json baseline tracks these rows across PRs).
  std::FILE* out = std::fopen(json_path, "w");
  if (out == nullptr) {
    std::printf("cannot write %s\n", json_path);
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"bench_table1\",\n  \"entries\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"rollout_kb\": %.1f, "
                 "\"pull_ms\": %.3f, \"buffer_ms\": %.3f, \"train_ms\": %.3f}%s\n",
                 row.name, row.size_kb, row.pull_ms, row.buffer_ms, row.train_ms,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("\nwrote %s\n", json_path);

  return finish("bench_table1");
}
