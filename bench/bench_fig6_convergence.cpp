// Fig. 6 of the paper: average episode return of IMPALA / DQN / PPO on
// CartPole and four Atari environments, XingTian vs RLLib (plus RLLib's
// public reference results). Paper's claim: XingTian-based algorithms reach
// *better or similar* convergent performance — the communication model does
// not change the learning math, it only changes how fast rollouts flow.
//
// Here: identical Agent/Algorithm/Environment implementations run under the
// XingTian runtime and the pull-based baseline with the same seeds and
// hyperparameters, to a scaled-down step budget (the paper trains 1M/10M
// steps on a V100; see EXPERIMENTS.md). Atari is the SynthArcade suite.
//
// Shape to reproduce: for every (algorithm, environment), XingTian's average
// return is similar to or better than the baseline's.

#include "bench_util.h"

#include "baselines/pull_driver.h"
#include "envs/registry.h"
#include "envs/timed_env.h"
#include "framework/runtime.h"

namespace {

using namespace xt;
using namespace xt::bench;

struct Budget {
  std::uint64_t cartpole;
  std::uint64_t arcade;
};

/// Every environment is wrapped in a TimedEnv charging an emulator-like
/// per-step latency. Without it, this host's explorers flood the learner
/// with orders of magnitude more rollouts than it can train on (the paper's
/// testbed is environment-bound: Atari emulation is slower than a V100
/// training step), and the resulting policy lag is an artifact, not a
/// framework property. Both frameworks get the identical wrapper.
constexpr std::int64_t kEnvStepNs = 500'000;  // 0.5 ms per env step

AlgoSetup make_setup(AlgoKind kind, const std::string& env) {
  AlgoSetup setup;
  setup.kind = kind;
  setup.env_name = "Timed:" + env;
  setup.seed = 7;
  // Shared small-net hyperparameters; learning (not wall time) is the point
  // here, so frames and IPC pacing stay off.
  setup.impala.hidden = {64, 64};
  setup.impala.fragment_len = 200;
  setup.ppo.hidden = {64, 64};
  setup.ppo.fragment_len = 200;
  setup.ppo.n_explorers = 4;
  setup.ppo.epochs = 2;
  setup.dqn.hidden = {64, 64};
  setup.dqn.replay_capacity = 20'000;
  setup.dqn.train_start = 500;
  setup.dqn.eps_decay_steps = 3'000;
  return setup;
}

double run_xingtian(const AlgoSetup& setup, std::uint64_t steps, int explorers) {
  DeploymentConfig deployment;
  deployment.explorers_per_machine = {explorers};
  deployment.max_steps_consumed = steps;
  deployment.max_seconds = 60.0;
  deployment.target_return_window = 100;  // wide window: short-budget returns are noisy
  XingTianRuntime runtime(setup, deployment);
  return runtime.run().avg_episode_return;
}

double run_pull(const AlgoSetup& setup, std::uint64_t steps, int explorers) {
  baselines::PullDeployment deployment;
  deployment.explorers_per_machine = {explorers};
  deployment.rpc.dispatch_ns = 50'000;
  deployment.max_steps_consumed = steps;
  deployment.max_seconds = 60.0;
  deployment.target_return_window = 100;
  return baselines::run_pullhub(setup, deployment).avg_episode_return;
}

}  // namespace

int main() {
  banner("Fig. 6: Average Episode Return (convergence, XingTian vs pull-based)");

  const char* kEnvs[] = {"CartPole", "SynthBeamRider", "SynthBreakout",
                         "SynthQbert", "SynthSpaceInvaders"};
  struct AlgoSpec {
    AlgoKind kind;
    const char* name;
    int explorers;
    Budget budget;
  };
  const AlgoSpec kAlgos[] = {
      {AlgoKind::kImpala, "IMPALA", 4, {16'000, 10'000}},
      {AlgoKind::kDqn, "DQN", 1, {4'000, 3'000}},
      {AlgoKind::kPpo, "PPO", 4, {16'000, 10'000}},
  };

  for (const char* env : kEnvs) {
    register_environment("Timed:" + std::string(env), [env] {
      return std::make_unique<TimedEnv>(make_environment(env), kEnvStepNs);
    });
  }

  for (const AlgoSpec& algo : kAlgos) {
    section(algo.name);
    std::printf("%-20s %16s %16s %10s\n", "environment", "XingTian return",
                "Pull return", "ratio");
    for (const char* env : kEnvs) {
      const bool is_cartpole = std::string(env) == "CartPole";
      const std::uint64_t steps =
          is_cartpole ? algo.budget.cartpole : algo.budget.arcade;
      AlgoSetup setup = make_setup(algo.kind, env);
      const double xt_return = run_xingtian(setup, steps, algo.explorers);
      const double pull_return = run_pull(setup, steps, algo.explorers);
      const double ratio = pull_return != 0.0 ? xt_return / pull_return : 0.0;
      std::printf("%-20s %16.1f %16.1f %10.2f\n", env, xt_return, pull_return,
                  ratio);

      // "Better or similar": generous band because returns at these tiny
      // budgets are noisy in both directions (the paper trains 1000x longer).
      shape_check(std::string(algo.name) + "/" + env +
                      ": XingTian return similar or better (>= 0.4x baseline)",
                  pull_return <= 0.0 || xt_return >= 0.4 * pull_return);
    }
  }

  std::printf("\nNote: the paper's absolute returns (1M/10M-step budgets on "
              "real Atari) are not comparable; the reproduced claim is the\n"
              "RELATIVE one — same-or-better convergence under XingTian.\n");
  return finish("bench_fig6_convergence");
}
