// Fig. 4 of the paper: data transmission throughput / end-to-end latency of
// the dummy DRL algorithm in a single machine, for message sizes from KBs to
// MBs, with (a) one explorer and (b) 16 explorers.
//
// Paper results (64 MB messages): XingTian 71.01 MB/s vs RLLib ~35 MB/s with
// one explorer (+103%); XingTian 967.91 MB/s vs RLLib ~465 MB/s with 16
// explorers (+108%); Launchpad+Reverb < 2 MB/s in both cases, flat in the
// number of explorers.
//
// Shape to reproduce: XingTian >= ~2x the pull-based baseline at every size,
// >= 10x the buffer-server baseline, and the buffer server does NOT speed up
// with more explorers.

#include "bench_util.h"

#include "baselines/buffer_hub.h"
#include "baselines/pull_dummy.h"
#include "framework/dummy_transmission.h"

namespace {

using namespace xt;
using namespace xt::bench;

struct SizePoint {
  std::size_t bytes;
  int messages;  ///< per explorer (paper uses 20; fewer for huge messages)
};

const SizePoint kSizes[] = {
    {4 * 1024, 20}, {64 * 1024, 20}, {1024 * 1024, 10},
    {4 * 1024 * 1024, 3}, {16 * 1024 * 1024, 2},
};

DummyConfig base_config(int explorers, const SizePoint& point) {
  DummyConfig config;
  config.explorers_per_machine = {explorers};
  config.message_bytes = point.bytes;
  config.messages_per_explorer = point.messages;
  config.broker.compression.enabled = false;  // raw transmission, as measured
  config.broker.ipc_bandwidth_bytes_per_sec = kIpcBandwidth;
  return config;
}

baselines::RpcConfig pull_config() {
  baselines::RpcConfig rpc;
  rpc.ipc_bandwidth_bytes_per_sec = kIpcBandwidth;
  return rpc;
}

}  // namespace

int main() {
  banner("Fig. 4: Data Transmission in a Single Machine (dummy DRL algorithm)");

  double buffer_throughput_1 = 0.0, buffer_throughput_16 = 0.0;

  for (int explorers : {1, 16}) {
    section(explorers == 1 ? "Fig. 4(a): one explorer"
                           : "Fig. 4(b): 16 explorers");
    std::printf("%12s %16s %16s %16s %14s %14s\n", "msg size", "XingTian MB/s",
                "Pull MB/s", "Buffer MB/s", "XT lat (s)", "Pull lat (s)");

    for (const SizePoint& point : kSizes) {
      const DummyResult xt_result =
          run_dummy_transmission_xingtian(base_config(explorers, point));
      const DummyResult pull_result = baselines::run_dummy_transmission_pullhub(
          base_config(explorers, point), pull_config());

      // The buffer server is so slow that we only probe it at small sizes
      // (the paper similarly reports it flat below 2 MB/s everywhere).
      double buffer_mbps = -1.0;
      if (point.bytes <= 256 * 1024) {
        DummyConfig config = base_config(explorers, point);
        config.messages_per_explorer = 2;
        const DummyResult buffer_result =
            baselines::run_dummy_transmission_bufferhub(
                config, baselines::ChunkedTransferConfig{});
        buffer_mbps = buffer_result.throughput_mbps;
        if (point.bytes == 64 * 1024) {
          (explorers == 1 ? buffer_throughput_1 : buffer_throughput_16) =
              buffer_mbps;
        }
      }

      char buffer_cell[32];
      if (buffer_mbps >= 0) {
        std::snprintf(buffer_cell, sizeof(buffer_cell), "%16.2f", buffer_mbps);
      } else {
        std::snprintf(buffer_cell, sizeof(buffer_cell), "%16s", "-");
      }
      std::printf("%12s %16.2f %16.2f %s %14.3f %14.3f\n",
                  format_bytes(static_cast<double>(point.bytes)).c_str(),
                  xt_result.throughput_mbps, pull_result.throughput_mbps,
                  buffer_cell, xt_result.end_to_end_seconds,
                  pull_result.end_to_end_seconds);

      if (point.bytes >= 64 * 1024) {
        shape_check("XingTian >= 1.5x pull-based at " +
                        format_bytes(static_cast<double>(point.bytes)) + ", " +
                        std::to_string(explorers) + " explorer(s) (paper: >= 2x)",
                    xt_result.throughput_mbps >=
                        1.5 * pull_result.throughput_mbps);
      }
      if (buffer_mbps >= 0 && point.bytes >= 64 * 1024) {
        shape_check("XingTian >= 10x buffer-server at " +
                        format_bytes(static_cast<double>(point.bytes)) + ", " +
                        std::to_string(explorers) + " explorer(s)",
                    xt_result.throughput_mbps >= 10.0 * buffer_mbps);
      }
    }
  }

  section("buffer-server scaling (paper: more explorers do not help)");
  std::printf("buffer throughput @64KB: 1 explorer %.2f MB/s, 16 explorers %.2f MB/s\n",
              buffer_throughput_1, buffer_throughput_16);
  shape_check("buffer-server throughput flat in explorer count (within 2x)",
              buffer_throughput_16 < 2.0 * buffer_throughput_1);

  return finish("bench_fig4_single");
}
