// Fig. 11 of the paper: IMPALA throughput under growing deployments — 2 to
// 256 explorers across 1, 2 and 4 machines (BeamRider, 500-step fragments).
//
// Paper: XingTian scales ~linearly to 32 explorers, then the learner starts
// to saturate; at 256 explorers across 4 machines RLLib's throughput DROPS
// (cross-machine pulls on the critical path) while XingTian's still grows,
// ending 91.12% higher.
//
// Scaled to this host: explorer counts {2..32}, machines {1,1,1,1,2,4}, and
// a TimedEnv wrapper charging each env step an emulator-like latency so
// explorers are environment-bound (as on the paper's 72-core testbed) rather
// than bound by this machine's core count. See DESIGN.md / EXPERIMENTS.md.

#include "bench_util.h"

#include "baselines/pull_driver.h"
#include "envs/registry.h"
#include "envs/timed_env.h"
#include "framework/runtime.h"

namespace {

using namespace xt;
using namespace xt::bench;

constexpr double kWallSeconds = 6.0;
constexpr std::int64_t kEnvStepNs = 1'000'000;  // 1 ms emulator step
constexpr std::size_t kFrameBytes = 2'000;      // ~1 MB fragments

AlgoSetup make_setup() {
  AlgoSetup setup;
  setup.kind = AlgoKind::kImpala;
  setup.env_name = "TimedBeamRider";
  setup.seed = 21;
  setup.impala.hidden = {64, 64};
  setup.impala.fragment_len = 500;
  setup.impala.frame_bytes_per_step = kFrameBytes;
  return setup;
}

std::vector<int> spread(int explorers, int machines) {
  std::vector<int> out(machines, explorers / machines);
  out[0] += explorers % machines;
  return out;
}

}  // namespace

int main() {
  banner("Fig. 11: Scalability (IMPALA, BeamRider-like, env step = 1 ms)");

  register_environment("TimedBeamRider", [] {
    return std::make_unique<TimedEnv>(make_environment("SynthBeamRider"),
                                      kEnvStepNs);
  });

  struct Config {
    int explorers;
    int machines;
  };
  // The saturation knee lands where explorer-side inference saturates this
  // host's single core (~32 explorers), playing the role of the paper's
  // learner saturation at ~64-128 explorers on the 72-core testbed.
  const Config kConfigs[] = {{2, 1}, {4, 1}, {8, 1}, {16, 1}, {24, 2}, {32, 4}};

  std::printf("\n%10s %9s %18s %14s %10s\n", "explorers", "machines",
              "XingTian steps/s", "Pull steps/s", "XT/Pull");

  std::vector<double> xt_rates, pull_rates;
  for (const Config& config : kConfigs) {
    const AlgoSetup setup = make_setup();

    DeploymentConfig xt_deploy;
    xt_deploy.explorers_per_machine = spread(config.explorers, config.machines);
    xt_deploy.broker.compression.enabled = false;
    xt_deploy.explorer_send_capacity = 4;
    xt_deploy.broker.ipc_bandwidth_bytes_per_sec = kIpcBandwidth;
    xt_deploy.link.bandwidth_bytes_per_sec = kNicBandwidth;
    xt_deploy.max_steps_consumed = 0;
    xt_deploy.max_seconds = kWallSeconds;
    XingTianRuntime runtime(setup, xt_deploy);
    const RunReport xt_report = runtime.run();

    baselines::PullDeployment pull_deploy;
    pull_deploy.explorers_per_machine = spread(config.explorers, config.machines);
    pull_deploy.rpc.ipc_bandwidth_bytes_per_sec = kIpcBandwidth;
    pull_deploy.rpc.link.bandwidth_bytes_per_sec = kNicBandwidth;
    pull_deploy.max_steps_consumed = 0;
    pull_deploy.max_seconds = kWallSeconds;
    const RunReport pull_report = baselines::run_pullhub(setup, pull_deploy);

    xt_rates.push_back(xt_report.avg_throughput);
    pull_rates.push_back(pull_report.avg_throughput);
    std::printf("%10d %9d %18.0f %14.0f %9.2fx\n", config.explorers,
                config.machines, xt_report.avg_throughput,
                pull_report.avg_throughput,
                pull_report.avg_throughput > 0
                    ? xt_report.avg_throughput / pull_report.avg_throughput
                    : 0.0);
  }

  section("shape checks vs paper Fig. 11");
  for (std::size_t i = 0; i < xt_rates.size(); ++i) {
    shape_check("XingTian >= pull-based at " +
                    std::to_string(kConfigs[i].explorers) + " explorers",
                xt_rates[i] >= pull_rates[i]);
  }
  shape_check("XingTian scales up in the single-machine range (2 -> 16)",
              xt_rates[3] > 3.0 * xt_rates[0]);
  shape_check(
      "largest multi-machine gap is the widest (paper: +91.12% at 4 machines)",
      pull_rates.back() > 0 &&
          xt_rates.back() / pull_rates.back() >=
              0.9 * (xt_rates[2] / std::max(1.0, pull_rates[2])));
  shape_check("XingTian holds its throughput from 2 machines to 4 machines",
              xt_rates[5] >= 0.8 * xt_rates[4]);

  return finish("bench_fig11_scalability");
}
