// Fig. 11 of the paper: throughput under growing deployments. Two parts.
//
// Part 1 (always, and the only part in --json mode): a comm-core sweep that
// scales *explorer count* to 1024 against one learner machine — far past the
// paper's 256 — by driving the broker/fabric layer directly with the
// paper's message mix (bulk rollouts to the learner, small heartbeat/stats
// control frames to the center controller). Each point reports delivered
// throughput *per explorer*; a flat line is perfect scaling. This is the
// regime where per-frame cost, not bytes, saturates a paced link: 1024
// explorers emit ~50 control frames/s each, and an unbatched link direction
// caps at roughly 1/latency ≈ 10k frames/s. Router sharding
// (`[comm] router_shards`) keeps header routing off one hot thread and
// frame coalescing batches the control plane, so the 1024-point must hold
// >= 0.5x the per-explorer throughput of the 64-point (acceptance gate;
// in practice it is close to flat). Results land in BENCH_fig11.json and
// CI diffs them against the checked-in baseline via tools/perf_diff.
//
// Part 2 (no-arg mode): the original scaled-down RL sweep — IMPALA
// end-to-end, 2..32 explorers over 1, 2 and 4 machines vs the pull-based
// baseline (paper: XingTian ends 91.12% ahead at 256 explorers; here the
// knee is this host's core budget, see EXPERIMENTS.md).

#include "bench_util.h"

#include <atomic>
#include <cstring>
#include <thread>

#include "baselines/pull_driver.h"
#include "comm/broker.h"
#include "comm/endpoint.h"
#include "common/clock.h"
#include "envs/registry.h"
#include "envs/timed_env.h"
#include "framework/runtime.h"
#include "netsim/fabric.h"

namespace {

using namespace xt;
using namespace xt::bench;

constexpr double kWallSeconds = 6.0;
constexpr std::int64_t kEnvStepNs = 1'000'000;  // 1 ms emulator step
constexpr std::size_t kFrameBytes = 2'000;      // ~1 MB fragments

// --- Part 1: comm-core explorer sweep -------------------------------------

/// The modeled per-explorer message mix (paper Table 1 shapes, scaled):
/// bulk rollouts toward the learner plus a chatty control plane toward the
/// center controller. 60 messages/s/explorer total.
constexpr double kRolloutsPerExplorerPerSec = 10.0;
constexpr double kControlPerExplorerPerSec = 50.0;  // heartbeats + stats
constexpr std::size_t kRolloutBytes = 4096;
constexpr std::size_t kStatsBytes = 256;
constexpr std::size_t kHeartbeatBytes = 16;
constexpr int kDriverMachines = 3;  // explorers live on machines 1..3
constexpr double kWarmupSeconds = 0.8;
constexpr double kMeasureSeconds = 2.0;

struct SweepPoint {
  int explorers = 0;
  double per_explorer_per_s = 0.0;  ///< delivered msgs/s per explorer
  double delivered_per_s = 0.0;     ///< total delivered msgs/s
  std::uint64_t coalesced = 0;      ///< coalesced sub-frames over the run
};

/// Submit one message straight into a machine's broker, the way an
/// endpoint's sender thread would (store body with the expected fetch
/// count, then hand the header to the router).
void submit_direct(Broker& broker, const NodeId& src, const NodeId& dst,
                   MsgType type, const Payload& body) {
  MessageHeader header;
  header.msg_id = next_message_id();
  header.src = src;
  header.dsts = {dst};
  header.type = type;
  header.body_size = body->size();
  header.created_ns = now_ns();
  const std::uint32_t fetches = broker.expected_fetches(header);
  header.object_id = broker.store().put(body, fetches);
  if (!broker.submit(header)) {
    for (std::uint32_t i = 0; i < fetches; ++i) {
      broker.store().release(header.object_id);
    }
  }
}

/// One machine's worth of simulated explorers: a single thread emitting the
/// aggregate paced message mix for `explorers` of them.
void driver_loop(Broker& broker, std::uint16_t machine, int explorers,
                 const NodeId& learner, const NodeId& controller,
                 const std::atomic<bool>& stop) {
  const Payload rollout = make_payload(Bytes(kRolloutBytes, 1));
  const Payload stats = make_payload(Bytes(kStatsBytes, 2));
  const Payload beat = make_payload(Bytes(kHeartbeatBytes, 3));
  const NodeId src = explorer_id(machine, 0);
  double due_rollout = 0.0;
  double due_control = 0.0;
  bool beat_turn = false;
  std::int64_t last = now_ns();
  while (!stop.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    const std::int64_t now = now_ns();
    const double dt = static_cast<double>(now - last) * 1e-9;
    last = now;
    due_rollout += explorers * kRolloutsPerExplorerPerSec * dt;
    due_control += explorers * kControlPerExplorerPerSec * dt;
    // After a scheduler stall, send at most 100 ms of backlog in one burst.
    due_rollout = std::min(due_rollout,
                           explorers * kRolloutsPerExplorerPerSec * 0.1 + 1.0);
    due_control = std::min(due_control,
                           explorers * kControlPerExplorerPerSec * 0.1 + 1.0);
    for (; due_rollout >= 1.0; due_rollout -= 1.0) {
      submit_direct(broker, src, learner, MsgType::kRollout, rollout);
    }
    for (; due_control >= 1.0; due_control -= 1.0) {
      beat_turn = !beat_turn;
      submit_direct(broker, src, controller,
                    beat_turn ? MsgType::kHeartbeat : MsgType::kStats,
                    beat_turn ? beat : stats);
    }
  }
}

SweepPoint run_comm_point(int explorers, std::uint32_t router_shards,
                          bool coalescing) {
  Broker::Options options;
  options.router_shards = router_shards;
  std::vector<std::unique_ptr<Broker>> brokers;
  for (std::uint16_t m = 0; m < kDriverMachines + 1; ++m) {
    brokers.push_back(std::make_unique<Broker>(m, options));
  }
  CoalesceConfig coalesce;
  coalesce.enabled = coalescing;
  Fabric fabric(LinkConfig{}, ReliabilityConfig{}, coalesce);
  for (std::uint16_t m = 1; m <= kDriverMachines; ++m) {
    fabric.connect(*brokers[0], *brokers[m]);  // star around the learner
  }

  Endpoint learner(learner_id(0), *brokers[0]);
  Endpoint controller(controller_id(0), *brokers[0]);

  std::atomic<bool> stop{false};
  // Drain receivers so delivered messages don't pile up in recv buffers.
  auto drain = [&stop](Endpoint& endpoint) {
    while (!stop.load(std::memory_order_relaxed)) {
      endpoint.receive_for(std::chrono::milliseconds(50));
    }
  };
  std::thread learner_drain(drain, std::ref(learner));
  std::thread controller_drain(drain, std::ref(controller));

  const std::vector<int> per_machine = [&] {
    std::vector<int> out(kDriverMachines, explorers / kDriverMachines);
    for (int i = 0; i < explorers % kDriverMachines; ++i) ++out[i];
    return out;
  }();
  std::vector<std::thread> drivers;
  for (std::uint16_t m = 1; m <= kDriverMachines; ++m) {
    drivers.emplace_back(driver_loop, std::ref(*brokers[m]), m,
                         per_machine[m - 1], learner.id(), controller.id(),
                         std::cref(stop));
  }

  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<int>(kWarmupSeconds * 1e3)));
  const std::uint64_t before =
      learner.counters().messages_received.load() +
      controller.counters().messages_received.load();
  const std::int64_t t0 = now_ns();
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<int>(kMeasureSeconds * 1e3)));
  const std::uint64_t after =
      learner.counters().messages_received.load() +
      controller.counters().messages_received.load();
  const double seconds = static_cast<double>(now_ns() - t0) * 1e-9;

  stop.store(true);
  for (auto& driver : drivers) driver.join();
  learner_drain.join();
  controller_drain.join();
  fabric.stop();
  learner.stop();
  controller.stop();
  for (auto& broker : brokers) broker->stop();

  SweepPoint point;
  point.explorers = explorers;
  point.delivered_per_s = static_cast<double>(after - before) / seconds;
  point.per_explorer_per_s = point.delivered_per_s / explorers;
  point.coalesced = fabric.coalesced_subframes();
  return point;
}

// --- Part 2: scaled-down end-to-end RL sweep -------------------------------

AlgoSetup make_setup() {
  AlgoSetup setup;
  setup.kind = AlgoKind::kImpala;
  setup.env_name = "TimedBeamRider";
  setup.seed = 21;
  setup.impala.hidden = {64, 64};
  setup.impala.fragment_len = 500;
  setup.impala.frame_bytes_per_step = kFrameBytes;
  return setup;
}

std::vector<int> spread(int explorers, int machines) {
  std::vector<int> out(machines, explorers / machines);
  // Distribute the remainder round-robin instead of piling it all onto
  // machine 0 (which skewed e.g. 7-over-3 into 3,2,2 rather than 5,1,1...
  // worst case machine 0 carried machines-1 extra explorers).
  for (int i = 0; i < explorers % machines; ++i) ++out[i];
  return out;
}

void run_rl_sweep() {
  register_environment("TimedBeamRider", [] {
    return std::make_unique<TimedEnv>(make_environment("SynthBeamRider"),
                                      kEnvStepNs);
  });

  struct Config {
    int explorers;
    int machines;
  };
  // The saturation knee lands where explorer-side inference saturates this
  // host's single core (~32 explorers), playing the role of the paper's
  // learner saturation at ~64-128 explorers on the 72-core testbed.
  const Config kConfigs[] = {{2, 1}, {4, 1}, {8, 1}, {16, 1}, {24, 2}, {32, 4}};

  std::printf("\n%10s %9s %18s %14s %10s\n", "explorers", "machines",
              "XingTian steps/s", "Pull steps/s", "XT/Pull");

  std::vector<double> xt_rates, pull_rates;
  for (const Config& config : kConfigs) {
    const AlgoSetup setup = make_setup();

    DeploymentConfig xt_deploy;
    xt_deploy.explorers_per_machine = spread(config.explorers, config.machines);
    xt_deploy.broker.compression.enabled = false;
    xt_deploy.broker.router_shards = 4;
    xt_deploy.coalesce.enabled = true;
    xt_deploy.explorer_send_capacity = 4;
    xt_deploy.broker.ipc_bandwidth_bytes_per_sec = kIpcBandwidth;
    xt_deploy.link.bandwidth_bytes_per_sec = kNicBandwidth;
    xt_deploy.max_steps_consumed = 0;
    xt_deploy.max_seconds = kWallSeconds;
    XingTianRuntime runtime(setup, xt_deploy);
    const RunReport xt_report = runtime.run();

    baselines::PullDeployment pull_deploy;
    pull_deploy.explorers_per_machine = spread(config.explorers, config.machines);
    pull_deploy.rpc.ipc_bandwidth_bytes_per_sec = kIpcBandwidth;
    pull_deploy.rpc.link.bandwidth_bytes_per_sec = kNicBandwidth;
    pull_deploy.max_steps_consumed = 0;
    pull_deploy.max_seconds = kWallSeconds;
    const RunReport pull_report = baselines::run_pullhub(setup, pull_deploy);

    xt_rates.push_back(xt_report.avg_throughput);
    pull_rates.push_back(pull_report.avg_throughput);
    std::printf("%10d %9d %18.0f %14.0f %9.2fx\n", config.explorers,
                config.machines, xt_report.avg_throughput,
                pull_report.avg_throughput,
                pull_report.avg_throughput > 0
                    ? xt_report.avg_throughput / pull_report.avg_throughput
                    : 0.0);
  }

  section("shape checks vs paper Fig. 11 (RL sweep)");
  // Below the saturation knee both systems are env-rate-bound and tie, so a
  // strict >= flaps with scheduler noise; 0.8x still catches a real channel
  // regression while the multi-machine checks below carry the paper's claim.
  for (std::size_t i = 0; i < xt_rates.size(); ++i) {
    shape_check("XingTian >= 0.8x pull-based at " +
                    std::to_string(kConfigs[i].explorers) + " explorers",
                xt_rates[i] >= 0.8 * pull_rates[i]);
  }
  shape_check("XingTian scales up in the single-machine range (2 -> 16)",
              xt_rates[3] > 3.0 * xt_rates[0]);
  shape_check(
      "largest multi-machine gap is the widest (paper: +91.12% at 4 machines)",
      pull_rates.back() > 0 &&
          xt_rates.back() / pull_rates.back() >=
              0.9 * (xt_rates[2] / std::max(1.0, pull_rates[2])));
  shape_check("XingTian holds its throughput from 2 machines to 4 machines",
              xt_rates[5] >= 0.8 * xt_rates[4]);
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  bool json_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
      json_only = true;
    }
  }
  if (json_path == nullptr) json_path = "BENCH_fig11.json";

  banner("Fig. 11: Scalability — comm-core sweep to 1024 explorers");

  constexpr std::uint32_t kShards = 4;
  const int kExplorerPoints[] = {64, 128, 256, 512, 1024};
  std::printf("\nrouter_shards=%u, coalescing=on, %d driver machines, "
              "%.0f bulk + %.0f control msgs/s/explorer\n\n",
              kShards, kDriverMachines, kRolloutsPerExplorerPerSec,
              kControlPerExplorerPerSec);
  std::printf("%10s %16s %22s %14s\n", "explorers", "delivered/s",
              "per-explorer msgs/s", "coalesced");

  std::vector<SweepPoint> points;
  for (const int explorers : kExplorerPoints) {
    points.push_back(run_comm_point(explorers, kShards, /*coalescing=*/true));
    const SweepPoint& p = points.back();
    std::printf("%10d %16.0f %22.1f %14llu\n", p.explorers, p.delivered_per_s,
                p.per_explorer_per_s,
                static_cast<unsigned long long>(p.coalesced));
  }

  std::uint64_t coalesced_total = 0;
  for (const SweepPoint& p : points) coalesced_total += p.coalesced;

  section("shape checks (comm-core sweep)");
  shape_check(
      "per-explorer throughput at 1024 >= 0.5x the 64-explorer point",
      points.back().per_explorer_per_s >=
          0.5 * points.front().per_explorer_per_s);
  shape_check("frame coalescing engaged on the paced links",
              coalesced_total > 0);

  std::FILE* out = std::fopen(json_path, "w");
  if (out == nullptr) {
    std::printf("cannot write %s\n", json_path);
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"bench_fig11\",\n");
  std::fprintf(out, "  \"router_shards\": %u,\n  \"driver_machines\": %d,\n",
               kShards, kDriverMachines);
  std::fprintf(out, "  \"entries\": [\n");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& p = points[i];
    std::fprintf(out,
                 "    {\"name\": \"%d\", \"explorers\": %d, "
                 "\"throughput_per_explorer_per_s\": %.2f}%s\n",
                 p.explorers, p.explorers, p.per_explorer_per_s,
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("\nwrote %s\n", json_path);

  if (!json_only) {
    // Contrast point: the same 1024-explorer load through a single router
    // and unbatched links — the collapse the tentpole machinery prevents.
    section("contrast: 1024 explorers, 1 shard, coalescing off");
    const SweepPoint flat = run_comm_point(1024, 1, /*coalescing=*/false);
    std::printf("per-explorer msgs/s: %.1f (vs %.1f with shards+coalescing)\n",
                flat.per_explorer_per_s, points.back().per_explorer_per_s);
    shape_check("sharded+coalesced beats the flat config at 1024 explorers",
                points.back().per_explorer_per_s > flat.per_explorer_per_s);

    banner("Fig. 11: Scalability (IMPALA, BeamRider-like, env step = 1 ms)");
    run_rl_sweep();
  }

  return finish("bench_fig11_scalability");
}
