// Fig. 7 of the paper: wall-clock time to finish a fixed rollout-step budget
// in Atari environments. Paper: XingTian-based IMPALA / DQN / PPO take
// 41.5% / 39.5% / 22.9% less time than the RLLib-based versions.
//
// Here both frameworks run identical algorithms on SynthBreakout with
// paper-scale message sizes (frame payloads) and the modeled IPC bandwidth,
// so the measured difference is the communication model: sender-push with
// overlap vs receiver-pull serialized with training.
//
// Shape to reproduce: XingTian completes each budget in less time.

#include "bench_util.h"

#include <cmath>

#include "baselines/pull_driver.h"
#include "envs/registry.h"
#include "envs/timed_env.h"
#include "framework/runtime.h"

namespace {

using namespace xt;
using namespace xt::bench;

AlgoSetup make_setup(AlgoKind kind) {
  AlgoSetup setup;
  setup.kind = kind;
  // DQN's single explorer must be environment-bound (as on the paper's
  // testbed) or it floods the learner on a fast host; see DESIGN.md.
  setup.env_name = kind == AlgoKind::kDqn ? "TimedBreakout" : "SynthBreakout";
  setup.seed = 5;
  setup.impala.hidden = {64, 64};
  setup.impala.fragment_len = 500;              // the paper's Atari fragment
  setup.impala.frame_bytes_per_step = kAtariFrameBytes;
  setup.ppo.hidden = {64, 64};
  setup.ppo.fragment_len = 500;
  setup.ppo.n_explorers = 4;
  setup.ppo.epochs = 2;
  setup.ppo.minibatch = 512;
  setup.ppo.frame_bytes_per_step = kAtariFrameBytes;
  setup.dqn.hidden = {64, 64};
  setup.dqn.replay_capacity = 4'000;  // bounded: transitions carry frames
  setup.dqn.train_start = 500;
  setup.dqn.eps_decay_steps = 2'000;
  setup.dqn.frame_bytes_per_step = 8'000;  // DQN messages are smaller (Table 1)
  return setup;
}

}  // namespace

int main() {
  banner("Fig. 7: Time to Complete a Fixed Step Budget (SynthBreakout)");
  register_environment("TimedBreakout", [] {
    return std::make_unique<TimedEnv>(make_environment("SynthBreakout"),
                                      500'000);  // 0.5 ms emulator step
  });
  std::printf("modeled IPC bandwidth: %.0f MB/s (see DESIGN.md)\n",
              kIpcBandwidth / 1e6);

  struct Case {
    AlgoKind kind;
    const char* name;
    int explorers;
    std::uint64_t steps;
    double paper_saving;  ///< paper: fraction of time XingTian saves
  };
  const Case kCases[] = {
      {AlgoKind::kImpala, "IMPALA", 4, 10'000, 0.4154},
      {AlgoKind::kDqn, "DQN", 1, 2'500, 0.3947},
      {AlgoKind::kPpo, "PPO", 4, 8'000, 0.2292},
  };

  std::printf("\n%-8s %10s %14s %14s %14s %18s\n", "Algo", "steps",
              "XingTian (s)", "Pull (s)", "XT saving", "paper saving");
  for (const Case& test_case : kCases) {
    AlgoSetup setup = make_setup(test_case.kind);

    DeploymentConfig xt_deploy;
    xt_deploy.explorers_per_machine = {test_case.explorers};
    xt_deploy.broker.compression.enabled = false;
    // Plasma-style backpressure: bounded send buffers keep 14 MB fragments
    // from piling up when explorers outrun the paced channel.
    xt_deploy.explorer_send_capacity = 2;
    xt_deploy.broker.ipc_bandwidth_bytes_per_sec = kIpcBandwidth;
    // The comm-core scaling machinery must not disturb the latency story:
    // the critical-path sum check below still has to hold with the router
    // sharded and small control frames coalescing on the links.
    xt_deploy.broker.router_shards = 2;
    xt_deploy.coalesce.enabled = true;
    xt_deploy.max_steps_consumed = test_case.steps;
    xt_deploy.max_seconds = 120.0;
    // Continuous profiling on the XingTian run: the trace ring feeds the
    // critical-path breakdown below, the sampler the per-thread profile.
    xt_deploy.obs.tracing = true;
    xt_deploy.obs.trace_capacity = 1 << 17;
    xt_deploy.profile.enabled = true;
    XingTianRuntime runtime(setup, xt_deploy);
    const RunReport xt_report = runtime.run();

    baselines::PullDeployment pull_deploy;
    pull_deploy.explorers_per_machine = {test_case.explorers};
    pull_deploy.rpc.ipc_bandwidth_bytes_per_sec = kIpcBandwidth;
    pull_deploy.max_steps_consumed = test_case.steps;
    pull_deploy.max_seconds = 240.0;
    const RunReport pull_report = baselines::run_pullhub(setup, pull_deploy);

    const double saving =
        1.0 - xt_report.wall_seconds / pull_report.wall_seconds;
    std::printf("%-8s %10llu %14.2f %14.2f %13.1f%% %17.1f%%\n",
                test_case.name,
                static_cast<unsigned long long>(test_case.steps),
                xt_report.wall_seconds, pull_report.wall_seconds,
                saving * 100.0, test_case.paper_saving * 100.0);

    print_time_breakdown("XingTian:", xt_report);
    print_time_breakdown("Pull:", pull_report);

    // Bottleneck attribution: the per-stage decomposition of every traced
    // message lifecycle, computed from the trace ring (Fig. 7's bars).
    const CriticalPathReport& cp = xt_report.critical_path;
    std::printf("  critical path: %llu message(s), mean e2e %.2f ms, "
                "dominant '%s' (%.0f%%)\n",
                static_cast<unsigned long long>(cp.messages),
                cp.mean_end_to_end_ms, cp.dominant_stage.c_str(),
                cp.dominant_share * 100.0);
    double stage_sum_ms = 0.0;
    for (const StageBreakdown& stage : cp.stages) {
      std::printf("    %-14s %10.1f ms total  %8.3f ms/msg  %5.1f%%\n",
                  stage.stage.c_str(), stage.total_ms, stage.mean_ms,
                  stage.share * 100.0);
      stage_sum_ms += stage.total_ms;
    }
    if (!xt_report.thread_profiles.empty()) {
      std::printf("  busiest threads:");
      for (std::size_t i = 0; i < xt_report.thread_profiles.size() && i < 4; ++i) {
        const ThreadProfile& thread = xt_report.thread_profiles[i];
        std::printf(" %s:%.0f%%", thread.name.c_str(), thread.busy_pct);
      }
      std::printf("\n");
    }

    shape_check(std::string(test_case.name) +
                    ": XingTian finishes the budget faster",
                xt_report.wall_seconds < pull_report.wall_seconds);
    shape_check(std::string(test_case.name) +
                    ": critical path reconstructed traced lifecycles",
                cp.messages > 0);
    shape_check(std::string(test_case.name) + ": dominant stage identified",
                !xt_report.dominant_stage.empty());
    // The stage decomposition must account for the end-to-end latency it
    // attributes: stage totals (incl. the explicit unattributed bucket) sum
    // to the measured e2e within 5%.
    const double sum_error =
        cp.total_end_to_end_ms > 0.0
            ? std::abs(stage_sum_ms - cp.total_end_to_end_ms) /
                  cp.total_end_to_end_ms
            : 1.0;
    shape_check(std::string(test_case.name) +
                    ": stage breakdown sums to e2e latency within 5%",
                sum_error <= 0.05);
  }

  return finish("bench_fig7_time");
}
