// Fig. 7 of the paper: wall-clock time to finish a fixed rollout-step budget
// in Atari environments. Paper: XingTian-based IMPALA / DQN / PPO take
// 41.5% / 39.5% / 22.9% less time than the RLLib-based versions.
//
// Here both frameworks run identical algorithms on SynthBreakout with
// paper-scale message sizes (frame payloads) and the modeled IPC bandwidth,
// so the measured difference is the communication model: sender-push with
// overlap vs receiver-pull serialized with training.
//
// Shape to reproduce: XingTian completes each budget in less time.

#include "bench_util.h"

#include "baselines/pull_driver.h"
#include "envs/registry.h"
#include "envs/timed_env.h"
#include "framework/runtime.h"

namespace {

using namespace xt;
using namespace xt::bench;

AlgoSetup make_setup(AlgoKind kind) {
  AlgoSetup setup;
  setup.kind = kind;
  // DQN's single explorer must be environment-bound (as on the paper's
  // testbed) or it floods the learner on a fast host; see DESIGN.md.
  setup.env_name = kind == AlgoKind::kDqn ? "TimedBreakout" : "SynthBreakout";
  setup.seed = 5;
  setup.impala.hidden = {64, 64};
  setup.impala.fragment_len = 500;              // the paper's Atari fragment
  setup.impala.frame_bytes_per_step = kAtariFrameBytes;
  setup.ppo.hidden = {64, 64};
  setup.ppo.fragment_len = 500;
  setup.ppo.n_explorers = 4;
  setup.ppo.epochs = 2;
  setup.ppo.minibatch = 512;
  setup.ppo.frame_bytes_per_step = kAtariFrameBytes;
  setup.dqn.hidden = {64, 64};
  setup.dqn.replay_capacity = 4'000;  // bounded: transitions carry frames
  setup.dqn.train_start = 500;
  setup.dqn.eps_decay_steps = 2'000;
  setup.dqn.frame_bytes_per_step = 8'000;  // DQN messages are smaller (Table 1)
  return setup;
}

}  // namespace

int main() {
  banner("Fig. 7: Time to Complete a Fixed Step Budget (SynthBreakout)");
  register_environment("TimedBreakout", [] {
    return std::make_unique<TimedEnv>(make_environment("SynthBreakout"),
                                      500'000);  // 0.5 ms emulator step
  });
  std::printf("modeled IPC bandwidth: %.0f MB/s (see DESIGN.md)\n",
              kIpcBandwidth / 1e6);

  struct Case {
    AlgoKind kind;
    const char* name;
    int explorers;
    std::uint64_t steps;
    double paper_saving;  ///< paper: fraction of time XingTian saves
  };
  const Case kCases[] = {
      {AlgoKind::kImpala, "IMPALA", 4, 10'000, 0.4154},
      {AlgoKind::kDqn, "DQN", 1, 2'500, 0.3947},
      {AlgoKind::kPpo, "PPO", 4, 8'000, 0.2292},
  };

  std::printf("\n%-8s %10s %14s %14s %14s %18s\n", "Algo", "steps",
              "XingTian (s)", "Pull (s)", "XT saving", "paper saving");
  for (const Case& test_case : kCases) {
    AlgoSetup setup = make_setup(test_case.kind);

    DeploymentConfig xt_deploy;
    xt_deploy.explorers_per_machine = {test_case.explorers};
    xt_deploy.broker.compression.enabled = false;
    // Plasma-style backpressure: bounded send buffers keep 14 MB fragments
    // from piling up when explorers outrun the paced channel.
    xt_deploy.explorer_send_capacity = 2;
    xt_deploy.broker.ipc_bandwidth_bytes_per_sec = kIpcBandwidth;
    xt_deploy.max_steps_consumed = test_case.steps;
    xt_deploy.max_seconds = 120.0;
    XingTianRuntime runtime(setup, xt_deploy);
    const RunReport xt_report = runtime.run();

    baselines::PullDeployment pull_deploy;
    pull_deploy.explorers_per_machine = {test_case.explorers};
    pull_deploy.rpc.ipc_bandwidth_bytes_per_sec = kIpcBandwidth;
    pull_deploy.max_steps_consumed = test_case.steps;
    pull_deploy.max_seconds = 240.0;
    const RunReport pull_report = baselines::run_pullhub(setup, pull_deploy);

    const double saving =
        1.0 - xt_report.wall_seconds / pull_report.wall_seconds;
    std::printf("%-8s %10llu %14.2f %14.2f %13.1f%% %17.1f%%\n",
                test_case.name,
                static_cast<unsigned long long>(test_case.steps),
                xt_report.wall_seconds, pull_report.wall_seconds,
                saving * 100.0, test_case.paper_saving * 100.0);

    print_time_breakdown("XingTian:", xt_report);
    print_time_breakdown("Pull:", pull_report);

    shape_check(std::string(test_case.name) +
                    ": XingTian finishes the budget faster",
                xt_report.wall_seconds < pull_report.wall_seconds);
  }

  return finish("bench_fig7_time");
}
