// Fig. 9 of the paper: DQN throughput (a) and the replay sampling &
// transmission latency against training time (b).
//
// Paper: XingTian-based DQN averages 58.44% higher throughput. Sampling and
// transmitting a 32-step batch (~1.9 MB) from RLLib's replay-buffer actor in
// another process takes ~62 ms, while XingTian keeps the replay inside the
// trainer thread and pays only ~8 ms of local sampling — the
// learner-local-replay design decision of Section 3.2.1.

#include "bench_util.h"

#include "baselines/pull_driver.h"
#include "baselines/remote_replay.h"
#include "envs/registry.h"
#include "envs/timed_env.h"
#include "framework/runtime.h"

namespace {

using namespace xt;
using namespace xt::bench;

constexpr double kWallSeconds = 10.0;

AlgoSetup make_setup() {
  AlgoSetup setup;
  setup.kind = AlgoKind::kDqn;
  setup.env_name = "TimedBreakout";  // env-bound explorer, as on the testbed
  setup.seed = 13;
  setup.dqn.hidden = {64, 64};
  setup.dqn.replay_capacity = 4'000;
  setup.dqn.train_start = 400;
  setup.dqn.eps_decay_steps = 2'000;
  // ~30 KB per transition with both frame copies: a 32-step batch is ~1 MB,
  // near the paper's 1.9 MB.
  setup.dqn.frame_bytes_per_step = 15'000;
  return setup;
}

void print_series(const char* label, const std::vector<ThroughputSeries::Point>& series) {
  std::printf("%s steps/s over time:", label);
  for (std::size_t i = 0; i < series.size(); i += 2) {
    std::printf(" %.0f", series[i].rate);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  banner("Fig. 9: DQN Throughput and Sampling & Transmission Analysis");
  register_environment("TimedBreakout", [] {
    return std::make_unique<TimedEnv>(make_environment("SynthBreakout"),
                                      500'000);  // 0.5 ms emulator step
  });

  const AlgoSetup setup = make_setup();

  DeploymentConfig xt_deploy;
  xt_deploy.explorers_per_machine = {1};  // the paper's basic single-explorer DQN
  xt_deploy.broker.compression.enabled = false;
  xt_deploy.broker.ipc_bandwidth_bytes_per_sec = kIpcBandwidth;
  xt_deploy.max_steps_consumed = 0;
  xt_deploy.max_seconds = kWallSeconds;
  XingTianRuntime runtime(setup, xt_deploy);
  const RunReport xt_report = runtime.run();

  baselines::PullDeployment pull_deploy;
  pull_deploy.explorers_per_machine = {1};
  pull_deploy.rpc.ipc_bandwidth_bytes_per_sec = kIpcBandwidth;
  pull_deploy.max_steps_consumed = 0;
  pull_deploy.max_seconds = kWallSeconds;
  const RunReport pull_report = baselines::run_pullhub(setup, pull_deploy);

  section("Fig. 9(a): throughput (high during replay warm-up, then training-gated)");
  print_series("XingTian", xt_report.throughput_series);
  print_series("Pull    ", pull_report.throughput_series);
  std::printf("average: XingTian %.0f steps/s, pull %.0f steps/s (+%.1f%%; "
              "paper: +58.44%%)\n",
              xt_report.avg_throughput, pull_report.avg_throughput,
              100.0 * (xt_report.avg_throughput / pull_report.avg_throughput -
                       1.0));

  section("Fig. 9(b): replay sampling & transmission vs training (ms)");
  std::printf("%-44s %8.3f   (paper: ~62)\n",
              "Pull: sample+transmit from replay actor",
              pull_report.mean_replay_sample_ms);
  std::printf("%-44s %8.3f   (paper: ~8)\n",
              "XingTian: local replay sampling",
              xt_report.mean_replay_sample_ms);
  std::printf("%-44s %8.3f   (paper: ~8 on a V100)\n", "training time",
              xt_report.mean_train_ms);

  section("shape checks vs paper Fig. 9");
  shape_check("XingTian throughput exceeds pull-based (paper: +58.44%)",
              xt_report.avg_throughput > 1.15 * pull_report.avg_throughput);
  shape_check(
      "remote replay-actor sampling >> learner-local sampling (62 vs 8)",
      pull_report.mean_replay_sample_ms > 3.0 * xt_report.mean_replay_sample_ms);
  shape_check("throughput declines once training starts (both frameworks)",
              !xt_report.throughput_series.empty() &&
                  xt_report.throughput_series.back().rate <
                      xt_report.throughput_series.front().rate);

  return finish("bench_fig9_dqn");
}
