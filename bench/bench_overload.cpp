// Overload gate (DESIGN.md §10): drive the comm core well past paced-link
// capacity with fault injection and prove that overload is a *survivable*
// state, not a collapse:
//
//  - 512 simulated explorers (3 driver machines around one learner machine)
//    offer ~1.5x each paced link's byte budget in experience while a live
//    control plane (heartbeats toward the center controller) rides the same
//    links.
//  - Every comm queue is bounded by the `[comm]` overload config, so the
//    excess is shed (oldest-first) instead of accumulating: queue depth is
//    sampled throughout the run and must stay at the watermark, not grow.
//  - A real Supervisor watches the driver sources through the same
//    congestion-aware suspect machinery the runtime uses. Nothing dies in
//    this bench, so ANY respawn is a false positive — the gate is zero.
//  - Control-class p99 delivery latency must stay under the supervision
//    timeout: heartbeats jump every priority lane, so even under sustained
//    overload
//    the failure detector keeps seeing fresh beats.
//
// Results land in BENCH_overload.json; CI diffs them against the checked-in
// baseline via tools/perf_diff (control_p99_ms is lower-better, the
// delivered rates higher-better).

#include "bench_util.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <mutex>
#include <thread>

#include "comm/broker.h"
#include "comm/endpoint.h"
#include "common/clock.h"
#include "framework/supervisor.h"
#include "netsim/fabric.h"

namespace {

using namespace xt;
using namespace xt::bench;

// The offered per-explorer mix: bulk experience toward the learner plus a
// liveness control plane toward the center controller. At the default 512
// explorers each driver machine's pipe carries ~171 explorers' rollouts:
// ~7.1 MB/s offered against a 5 MB/s paced link — sustained ~1.5x overload
// on the experience plane, every run, not just on bursts.
constexpr double kRolloutsPerExplorerPerSec = 10.0;
constexpr double kHeartbeatsPerExplorerPerSec = 10.0;
constexpr double kStatsPerExplorerPerSec = 10.0;
constexpr std::size_t kRolloutBytes = 4096;
constexpr std::size_t kStatsBytes = 256;
constexpr std::size_t kHeartbeatBytes = 16;
constexpr int kDriverMachines = 3;

// The paced link: 5 MB/s per pipe with 100 us propagation — well under the
// ~7.1 MB/s of experience each driver machine offers.
constexpr double kLinkBandwidth = 5e6;
constexpr std::int64_t kLinkLatencyNs = 100'000;

// [comm] overload config under test (watermarks in messages / frames).
constexpr std::size_t kHighWatermark = 256;
constexpr std::size_t kLowWatermark = 64;

// Supervision: same shape the chaos tests use. The p99 gate is the timeout.
constexpr double kHeartbeatTimeoutS = 0.5;

struct OverloadResult {
  int explorers = 0;
  double control_p99_ms = 0.0;        ///< heartbeat created -> controller
  double delivered_control_per_s = 0.0;
  double delivered_experience_per_s = 0.0;
  std::uint64_t messages_shed = 0;    ///< broker queues (router + inbox)
  std::uint64_t frames_shed = 0;      ///< pipe transmit queues
  std::size_t max_queue_depth = 0;    ///< deepest comm queue ever sampled
  std::uint64_t false_respawns = 0;   ///< supervisor restarts (must be 0)
  std::uint64_t suspects = 0;         ///< silence episodes ridden out
  std::uint64_t faults_injected = 0;
};

/// Submit one message straight into a machine's broker, the way an
/// endpoint's sender thread would.
void submit_direct(Broker& broker, const NodeId& src, const NodeId& dst,
                   MsgType type, const Payload& body) {
  MessageHeader header;
  header.msg_id = next_message_id();
  header.src = src;
  header.dsts = {dst};
  header.type = type;
  header.tclass = traffic_class_of(type);
  header.body_size = body->size();
  header.created_ns = now_ns();
  const std::uint32_t fetches = broker.expected_fetches(header);
  header.object_id = broker.store().put(body, fetches);
  if (!broker.submit(header)) {
    for (std::uint32_t i = 0; i < fetches; ++i) {
      broker.store().release(header.object_id);
    }
  }
}

/// One machine's worth of simulated explorers, paced like the Fig. 11 sweep.
void driver_loop(Broker& broker, std::uint16_t machine, int explorers,
                 const NodeId& learner, const NodeId& controller,
                 const std::atomic<bool>& stop) {
  const Payload rollout = make_payload(Bytes(kRolloutBytes, 1));
  const Payload stats = make_payload(Bytes(kStatsBytes, 2));
  const Payload beat = make_payload(Bytes(kHeartbeatBytes, 3));
  const NodeId src = explorer_id(machine, 0);
  double due_rollout = 0.0;
  double due_beat = 0.0;
  double due_stats = 0.0;
  std::int64_t last = now_ns();
  while (!stop.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    const std::int64_t now = now_ns();
    const double dt = static_cast<double>(now - last) * 1e-9;
    last = now;
    due_rollout += explorers * kRolloutsPerExplorerPerSec * dt;
    due_beat += explorers * kHeartbeatsPerExplorerPerSec * dt;
    due_stats += explorers * kStatsPerExplorerPerSec * dt;
    // After a scheduler stall, send at most 100 ms of backlog in one burst.
    due_rollout = std::min(due_rollout,
                           explorers * kRolloutsPerExplorerPerSec * 0.1 + 1.0);
    due_beat = std::min(due_beat,
                        explorers * kHeartbeatsPerExplorerPerSec * 0.1 + 1.0);
    due_stats = std::min(due_stats,
                         explorers * kStatsPerExplorerPerSec * 0.1 + 1.0);
    for (; due_rollout >= 1.0; due_rollout -= 1.0) {
      submit_direct(broker, src, learner, MsgType::kRollout, rollout);
    }
    for (; due_beat >= 1.0; due_beat -= 1.0) {
      submit_direct(broker, src, controller, MsgType::kHeartbeat, beat);
    }
    for (; due_stats >= 1.0; due_stats -= 1.0) {
      submit_direct(broker, src, controller, MsgType::kStats, stats);
    }
  }
}

OverloadResult run_overload_point(int explorers, double warmup_s,
                                  double measure_s) {
  OverloadConfig overload;
  overload.high_watermark = kHighWatermark;
  overload.low_watermark = kLowWatermark;
  overload.shed_policy = ShedPolicy::kOldest;

  Broker::Options options;
  options.router_shards = 4;
  options.overload = overload;
  std::vector<std::unique_ptr<Broker>> brokers;
  for (std::uint16_t m = 0; m < kDriverMachines + 1; ++m) {
    brokers.push_back(std::make_unique<Broker>(m, options));
  }

  LinkConfig link{kLinkBandwidth, kLinkLatencyNs, 64};
  link.overload = overload;
  link.faults.seed = 29;
  link.faults.drop_probability = 0.02;
  link.faults.corrupt_probability = 0.01;
  CoalesceConfig coalesce;
  coalesce.enabled = true;  // the control plane batches; bulk never waits
  Fabric fabric(link, ReliabilityConfig{}, coalesce);
  for (std::uint16_t m = 1; m <= kDriverMachines; ++m) {
    fabric.connect(*brokers[0], *brokers[m]);  // star around the learner
  }

  Endpoint learner(learner_id(0), *brokers[0]);
  Endpoint controller(controller_id(0), *brokers[0]);

  // A real Supervisor watches the three driver sources. The respawn
  // callback only counts: with every source alive and beating for the whole
  // run, any invocation is a false positive.
  MetricsRegistry metrics;
  SupervisionConfig sup;
  sup.enabled = true;
  sup.heartbeat_every_s = 1.0 / kHeartbeatsPerExplorerPerSec;
  sup.heartbeat_timeout_s = kHeartbeatTimeoutS;
  sup.suspect_grace_s = 0.5;
  sup.respawn_min_interval_s = 1.0;
  Supervisor supervisor(sup, metrics);
  std::atomic<std::uint64_t> false_respawns{0};
  for (std::uint16_t m = 1; m <= kDriverMachines; ++m) {
    supervisor.watch(explorer_id(m, 0), [&false_respawns](std::uint32_t) {
      false_respawns.fetch_add(1);
      return true;
    });
  }
  supervisor.set_congestion_probe([&] {
    for (const auto& broker : brokers) {
      for (const auto& [queue, depth] : broker->queue_depths()) {
        if (depth >= kHighWatermark) return true;
      }
    }
    for (const PacedPipe* pipe : fabric.pipes()) {
      if (pipe->queued_frames() >= kHighWatermark) return true;
    }
    return false;
  });

  std::atomic<bool> stop{false};
  std::atomic<bool> measuring{false};

  // Learner side: drain bulk experience as fast as it arrives.
  std::thread learner_drain([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      learner.receive_for(std::chrono::milliseconds(50));
    }
  });

  // Controller side: the failure-detector loop — note liveness by message
  // *creation* time, poll the supervisor, and record control-plane delivery
  // latency while the measurement window is open.
  std::vector<double> control_latencies_ms;
  std::thread controller_drain([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const auto msg = controller.receive_for(std::chrono::milliseconds(5));
      supervisor.poll();
      if (!msg) continue;
      supervisor.note_heartbeat(msg->header.src, msg->header.created_ns);
      if (msg->header.type == MsgType::kHeartbeat &&
          measuring.load(std::memory_order_relaxed)) {
        control_latencies_ms.push_back(
            static_cast<double>(now_ns() - msg->header.created_ns) / 1e6);
      }
    }
  });

  // Depth monitor: the bounded-memory gate. Samples every comm queue the
  // overload config is supposed to bound.
  std::atomic<std::size_t> max_depth{0};
  std::thread monitor([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      std::size_t deepest = 0;
      for (const auto& broker : brokers) {
        for (const auto& [queue, depth] : broker->queue_depths()) {
          deepest = std::max(deepest, depth);
        }
      }
      for (const PacedPipe* pipe : fabric.pipes()) {
        deepest = std::max(deepest, pipe->queued_frames());
      }
      std::size_t seen = max_depth.load(std::memory_order_relaxed);
      while (deepest > seen &&
             !max_depth.compare_exchange_weak(seen, deepest)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });

  const std::vector<int> per_machine = [&] {
    std::vector<int> out(kDriverMachines, explorers / kDriverMachines);
    for (int i = 0; i < explorers % kDriverMachines; ++i) ++out[i];
    return out;
  }();
  std::vector<std::thread> drivers;
  for (std::uint16_t m = 1; m <= kDriverMachines; ++m) {
    drivers.emplace_back(driver_loop, std::ref(*brokers[m]), m,
                         per_machine[m - 1], learner.id(), controller.id(),
                         std::cref(stop));
  }

  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<int>(warmup_s * 1e3)));
  const std::uint64_t learner_before =
      learner.counters().messages_received.load();
  const std::uint64_t controller_before =
      controller.counters().messages_received.load();
  measuring.store(true);
  const std::int64_t t0 = now_ns();
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<int>(measure_s * 1e3)));
  measuring.store(false);
  const std::uint64_t learner_after =
      learner.counters().messages_received.load();
  const std::uint64_t controller_after =
      controller.counters().messages_received.load();
  const double seconds = static_cast<double>(now_ns() - t0) * 1e-9;

  stop.store(true);
  for (auto& driver : drivers) driver.join();
  monitor.join();
  learner_drain.join();
  controller_drain.join();
  fabric.stop();
  learner.stop();
  controller.stop();

  OverloadResult result;
  result.explorers = explorers;
  result.false_respawns = false_respawns.load();
  result.suspects = supervisor.suspects();
  result.max_queue_depth = max_depth.load();
  for (const auto& broker : brokers) {
    result.messages_shed += broker->shed_messages();
    broker->stop();
  }
  for (const PacedPipe* pipe : fabric.pipes()) {
    result.frames_shed += pipe->frames_shed();
    result.faults_injected += pipe->frames_dropped();
  }
  // The controller receives heartbeats (control class) plus stats
  // (experience class); the learner receives rollouts (experience).
  std::sort(control_latencies_ms.begin(), control_latencies_ms.end());
  if (!control_latencies_ms.empty()) {
    const auto idx = static_cast<std::size_t>(
        0.99 * static_cast<double>(control_latencies_ms.size() - 1));
    result.control_p99_ms = control_latencies_ms[idx];
    result.delivered_control_per_s =
        static_cast<double>(control_latencies_ms.size()) / seconds;
  }
  const std::uint64_t delivered_total = (learner_after - learner_before) +
                                        (controller_after - controller_before);
  result.delivered_experience_per_s =
      (static_cast<double>(delivered_total) - result.delivered_control_per_s *
                                                  seconds) /
      seconds;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  int explorers = 512;
  double warmup_s = 1.0;
  double measure_s = 3.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--explorers") == 0 && i + 1 < argc) {
      explorers = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--measure-s") == 0 && i + 1 < argc) {
      measure_s = std::atof(argv[++i]);
    }
  }
  if (json_path == nullptr) json_path = "BENCH_overload.json";

  banner("Overload gate: priority lanes + bounded backpressure past link "
         "capacity");
  std::printf(
      "\n%d explorers over %d driver machines, link %.0f MB/s + %.0f us "
      "(~1.5x byte overload per pipe), drop 2%% corrupt 1%%, watermarks %zu/%zu\n",
      explorers, kDriverMachines, kLinkBandwidth / 1e6, kLinkLatencyNs / 1e3,
      kHighWatermark, kLowWatermark);

  const OverloadResult r = run_overload_point(explorers, warmup_s, measure_s);

  std::printf("\n%26s %14.1f\n", "control p99 (ms)", r.control_p99_ms);
  std::printf("%26s %14.0f\n", "control delivered/s", r.delivered_control_per_s);
  std::printf("%26s %14.0f\n", "experience delivered/s",
              r.delivered_experience_per_s);
  std::printf("%26s %14llu\n", "messages shed",
              static_cast<unsigned long long>(r.messages_shed));
  std::printf("%26s %14llu\n", "frames shed",
              static_cast<unsigned long long>(r.frames_shed));
  std::printf("%26s %14zu\n", "max queue depth", r.max_queue_depth);
  std::printf("%26s %14llu\n", "suspects ridden out",
              static_cast<unsigned long long>(r.suspects));
  std::printf("%26s %14llu\n", "false respawns",
              static_cast<unsigned long long>(r.false_respawns));
  std::printf("%26s %14llu\n", "faults injected",
              static_cast<unsigned long long>(r.faults_injected));

  section("overload gates");
  shape_check("zero false-positive respawns under sustained overload",
              r.false_respawns == 0);
  shape_check("queue depth stayed bounded (<= high watermark + slack)",
              r.max_queue_depth <= kHighWatermark + 64);
  shape_check("control-class p99 under the supervision timeout",
              r.control_p99_ms > 0.0 &&
                  r.control_p99_ms < kHeartbeatTimeoutS * 1e3);
  shape_check("overload actually engaged: experience was shed",
              r.messages_shed + r.frames_shed > 0);
  shape_check("experience still flows (graceful degradation, not collapse)",
              r.delivered_experience_per_s > 0.0);
  shape_check("fault injection engaged on the paced links",
              r.faults_injected > 0);

  std::FILE* out = std::fopen(json_path, "w");
  if (out == nullptr) {
    std::printf("cannot write %s\n", json_path);
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"bench_overload\",\n");
  std::fprintf(out, "  \"high_watermark\": %zu,\n  \"low_watermark\": %zu,\n",
               kHighWatermark, kLowWatermark);
  std::fprintf(out, "  \"entries\": [\n");
  std::fprintf(out,
               "    {\"name\": \"overload\", \"explorers\": %d, "
               "\"control_p99_ms\": %.3f, "
               "\"delivered_control_per_s\": %.1f, "
               "\"delivered_experience_per_s\": %.1f}\n",
               r.explorers, r.control_p99_ms, r.delivered_control_per_s,
               r.delivered_experience_per_s);
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("\nwrote %s\n", json_path);

  return finish("bench_overload");
}
