// Overhead of continuous profiling: identical fixed-budget IMPALA runs with
// the `[profile]` sampler off vs on (default 97 Hz + 10 Hz saturation
// probe), interleaved and min-of-trials on both sides to shed scheduler
// noise. The acceptance shape: the profiled run costs <= 2% wall-clock.
//
// A micro section also prices one annotated scope (ProfScope enter+exit
// with the sampler running) so the per-event cost is visible on its own.

#include "bench_util.h"

#include <algorithm>

#include "common/clock.h"
#include "framework/runtime.h"
#include "obs/profiler.h"

namespace {

using namespace xt;
using namespace xt::bench;

double run_once(bool profiled) {
  AlgoSetup setup;
  setup.kind = AlgoKind::kImpala;
  setup.env_name = "SynthBreakout";
  setup.seed = 9;
  setup.impala.hidden = {64, 64};
  setup.impala.fragment_len = 100;
  setup.impala.frame_bytes_per_step = 0;  // small messages: comm-path bound,
                                          // not bandwidth-pacing bound

  DeploymentConfig deploy;
  deploy.explorers_per_machine = {2};
  deploy.broker.compression.enabled = false;
  // Long enough that the sampler's fixed start/stop cost (~ms) cannot
  // register as percent-level overhead on its own.
  deploy.max_steps_consumed = 50'000;
  deploy.max_seconds = 60.0;
  deploy.profile.enabled = profiled;  // default hz/saturation_hz

  XingTianRuntime runtime(setup, deploy);
  return runtime.run().wall_seconds;
}

}  // namespace

int main() {
  banner("Profiling overhead: fixed-budget IMPALA A/B, sampler off vs on");

  // --- micro: cost of one annotated scope with the sampler live ----------
  {
    Profiler::global().reset();
    Profiler::global().start(97.0);
    constexpr int kScopes = 2'000'000;
    const Stopwatch watch;
    for (int i = 0; i < kScopes; ++i) {
      ProfScope scope("bench");
      // An empty body: the measured time is pure enter+exit.
    }
    const double ns_per_scope =
        static_cast<double>(watch.elapsed_ns()) / kScopes;
    Profiler::global().stop();
    std::printf("ProfScope enter+exit: %.1f ns (sampler at 97 Hz)\n",
                ns_per_scope);
    shape_check("annotated scope costs < 200 ns", ns_per_scope < 200.0);
  }

  // --- macro: whole-runtime A/B -------------------------------------------
  constexpr int kTrials = 4;
  double off_s = 1e30;
  double on_s = 1e30;
  std::printf("\n%-8s %14s %14s\n", "trial", "off (s)", "on (s)");
  for (int trial = 0; trial < kTrials; ++trial) {
    const double off = run_once(/*profiled=*/false);
    const double on = run_once(/*profiled=*/true);
    off_s = std::min(off_s, off);
    on_s = std::min(on_s, on);
    std::printf("%-8d %14.3f %14.3f\n", trial, off, on);
  }
  const double overhead = on_s / off_s - 1.0;
  std::printf("\nmin wall: off=%.3fs on=%.3fs overhead=%.2f%%\n", off_s, on_s,
              overhead * 100.0);
  shape_check("profiling overhead <= 2% wall-clock at default Hz",
              overhead <= 0.02);

  return finish("bench_profile_overhead");
}
