// Weight-codec gate (DESIGN.md §11): how much wire traffic does each weight
// broadcast codec save, at what latency and fidelity cost, and does training
// still converge on the compressed weights?
//
//  - Part A (microbench): encode+decode a realistically sized MLP weight
//    blob through every codec; report encode/decode latency, compression
//    ratio and worst-case round-trip error.
//  - Part B (end to end): an IMPALA run per codec with every explorer on the
//    far side of the paper's 118.04 MB/s NIC (Fig. 11's layout, shrunk).
//    Reports bytes-on-wire vs the fp32-equivalent publish volume, the p99
//    learner-publish -> explorer-apply latency, and the final episode return
//    against the fp32 reference. A last run exercises the LAPG-style lazy
//    broadcast and must actually skip versions.
//
// Results land in BENCH_weights.json; CI's codec-smoke job diffs them
// against the checked-in baseline via tools/perf_diff (`*_ratio` is
// higher-better, `*_ms` lower-better, returns are informational).

#include "bench_util.h"

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "compress/weight_codec.h"
#include "framework/runtime.h"
#include "nn/mlp.h"

namespace {

using namespace xt;
using namespace xt::bench;

// ---------------------------------------------------------------------------
// Part A: stateless codec microbench.
// ---------------------------------------------------------------------------

struct MicroResult {
  double encode_ms = 0.0;
  double decode_ms = 0.0;
  double compression_ratio = 0.0;
  double max_abs_error = 0.0;
};

std::vector<float> blob_floats(const Bytes& blob) {
  auto net = nn::Mlp::deserialize(blob);
  std::vector<float> out;
  if (!net) return out;
  for (nn::Matrix* m : net->parameters()) {
    out.insert(out.end(), m->data().begin(), m->data().end());
  }
  return out;
}

MicroResult run_micro(WeightCodec codec, const Bytes& blob, const Bytes& base,
                      int reps) {
  WeightSyncConfig config;
  config.codec = codec;
  config.topk_fraction = 0.01;
  const bool keyframe = !weight_codec_uses_base(codec);
  MicroResult result;
  const std::vector<float> truth = blob_floats(blob);
  for (int rep = 0; rep < reps; ++rep) {
    Stopwatch encode_clock;
    const auto frame = encode_weight_frame(blob, 2, config, keyframe,
                                           keyframe ? nullptr : &base, 1);
    result.encode_ms += encode_clock.elapsed_ms();
    if (!frame) continue;
    Stopwatch decode_clock;
    const auto decoded =
        decode_weight_frame(frame->payload, keyframe ? nullptr : &base);
    result.decode_ms += decode_clock.elapsed_ms();
    if (rep == 0 && decoded) {
      result.compression_ratio = static_cast<double>(blob.size()) /
                                 static_cast<double>(frame->payload.size());
      const std::vector<float> round = blob_floats(*decoded);
      for (std::size_t i = 0; i < truth.size() && i < round.size(); ++i) {
        result.max_abs_error =
            std::max(result.max_abs_error,
                     std::fabs(static_cast<double>(truth[i]) - round[i]));
      }
    }
  }
  result.encode_ms /= reps;
  result.decode_ms /= reps;
  return result;
}

// ---------------------------------------------------------------------------
// Part B: end-to-end IMPALA across the paper's NIC, one run per codec.
// ---------------------------------------------------------------------------

struct E2eResult {
  double wire_compression_ratio = 0.0;  ///< fp32-equivalent / bytes on wire
  double broadcast_p99_ms = 0.0;        ///< learner publish -> explorer apply
  double avg_return = 0.0;
  std::uint64_t broadcasts = 0;
  std::uint64_t keyframes = 0;
  std::uint64_t skipped = 0;
  std::uint64_t decode_failures = 0;
};

E2eResult run_e2e(const WeightSyncConfig& weight_sync, std::uint64_t steps) {
  AlgoSetup setup;
  setup.kind = AlgoKind::kImpala;
  setup.env_name = "CartPole";
  setup.seed = 21;
  setup.impala.hidden = {64, 64};
  setup.impala.fragment_len = 50;

  DeploymentConfig deployment;
  deployment.explorers_per_machine = {0, 4};  // every broadcast crosses the NIC
  deployment.learner_machine = 0;
  deployment.max_steps_consumed = steps;
  deployment.max_seconds = 60.0;
  deployment.link = LinkConfig{kNicBandwidth, 100'000, 64};
  deployment.weight_sync = weight_sync;

  XingTianRuntime runtime(setup, deployment);
  const RunReport report = runtime.run();

  E2eResult result;
  result.avg_return = report.avg_episode_return;
  result.broadcast_p99_ms = report.weights_broadcast_p99_ms;
  result.broadcasts = report.weight_broadcasts;
  result.keyframes = report.weights_keyframes;
  result.skipped = report.weights_skipped;
  result.decode_failures = report.weights_decode_failures;
  if (report.weights_wire_bytes > 0) {
    result.wire_compression_ratio =
        static_cast<double>(report.weights_raw_bytes) /
        static_cast<double>(report.weights_wire_bytes);
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  std::uint64_t steps = 4'000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--steps") == 0 && i + 1 < argc) {
      steps = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    }
  }
  if (json_path == nullptr) json_path = "BENCH_weights.json";

  banner("Weight codecs: bytes on the wire vs broadcast latency vs fidelity");

  // Part A blob: a mid-sized policy net (~84k parameters, ~330 KB fp32) and
  // a slightly-updated successor as the delta/top-k base.
  Rng rng(17);
  nn::Mlp net(64,
              {{256, nn::Activation::kRelu},
               {256, nn::Activation::kRelu},
               {6, nn::Activation::kIdentity}},
              rng);
  const Bytes base = net.serialize();
  for (nn::Matrix* m : net.parameters()) {
    for (float& v : m->data()) {
      v += static_cast<float>(rng.uniform(-0.01, 0.01));
    }
  }
  const Bytes blob = net.serialize();

  section("Part A: codec microbench (~330 KB blob, mean of 10 reps)");
  std::printf("%8s %12s %12s %14s %14s\n", "codec", "encode ms", "decode ms",
              "ratio", "max |err|");
  std::vector<MicroResult> micro(kWeightCodecCount);
  for (std::uint8_t c = 0; c < kWeightCodecCount; ++c) {
    const auto codec = static_cast<WeightCodec>(c);
    micro[c] = run_micro(codec, blob, base, 10);
    std::printf("%8s %12.3f %12.3f %14.2f %14.3g\n", weight_codec_name(codec),
                micro[c].encode_ms, micro[c].decode_ms,
                micro[c].compression_ratio, micro[c].max_abs_error);
  }

  section("Part B: IMPALA, 4 remote explorers over the 118 MB/s NIC");
  std::printf("%10s %10s %14s %12s %12s %10s %10s\n", "codec", "ratio",
              "bcast p99 ms", "return", "broadcasts", "keyframes", "skipped");
  std::vector<E2eResult> e2e(kWeightCodecCount);
  for (std::uint8_t c = 0; c < kWeightCodecCount; ++c) {
    WeightSyncConfig weight_sync;
    weight_sync.codec = static_cast<WeightCodec>(c);
    e2e[c] = run_e2e(weight_sync, steps);
    std::printf("%10s %10.2f %14.3f %12.2f %12llu %10llu %10llu\n",
                weight_codec_name(static_cast<WeightCodec>(c)),
                e2e[c].wire_compression_ratio, e2e[c].broadcast_p99_ms,
                e2e[c].avg_return,
                static_cast<unsigned long long>(e2e[c].broadcasts),
                static_cast<unsigned long long>(e2e[c].keyframes),
                static_cast<unsigned long long>(e2e[c].skipped));
  }

  // Lazy broadcast: fp16 plus a deliberately coarse threshold. The point is
  // the *mechanism* (small updates skipped, staleness bounded), not tuning.
  WeightSyncConfig lazy;
  lazy.codec = WeightCodec::kFp16;
  lazy.lazy_threshold = 0.3;
  lazy.max_staleness = 8;
  const E2eResult lazy_result = run_e2e(lazy, steps);
  std::printf("%10s %10.2f %14.3f %12.2f %12llu %10llu %10llu\n", "lazy-fp16",
              lazy_result.wire_compression_ratio, lazy_result.broadcast_p99_ms,
              lazy_result.avg_return,
              static_cast<unsigned long long>(lazy_result.broadcasts),
              static_cast<unsigned long long>(lazy_result.keyframes),
              static_cast<unsigned long long>(lazy_result.skipped));

  section("codec gates");
  const E2eResult& fp32 = e2e[static_cast<std::uint8_t>(WeightCodec::kFp32)];
  bool any_3x = false;
  std::uint64_t total_decode_failures = lazy_result.decode_failures;
  for (std::uint8_t c = 0; c < kWeightCodecCount; ++c) {
    if (e2e[c].wire_compression_ratio >= 3.0) any_3x = true;
    total_decode_failures += e2e[c].decode_failures;
  }
  shape_check(">=3x bytes-on-wire reduction for at least one codec vs fp32",
              any_3x);
  shape_check("fp32 reference run converged (positive final return)",
              fp32.avg_return > 0.0);
  for (std::uint8_t c = 1; c < kWeightCodecCount; ++c) {
    shape_check(std::string("convergence within tolerance on ") +
                    weight_codec_name(static_cast<WeightCodec>(c)) +
                    " (>= 0.4x the fp32 reference return)",
                e2e[c].avg_return >= 0.4 * fp32.avg_return);
  }
  shape_check("every codec actually broadcast weights",
              [&] {
                for (const E2eResult& r : e2e) {
                  if (r.broadcasts == 0) return false;
                }
                return true;
              }());
  shape_check("lazy broadcast skipped at least one version",
              lazy_result.skipped > 0);
  shape_check("lazy run still converged on stale-bounded weights",
              lazy_result.avg_return >= 0.4 * fp32.avg_return);
  shape_check("no decode failures in any healthy run",
              total_decode_failures == 0);

  std::FILE* out = std::fopen(json_path, "w");
  if (out == nullptr) {
    std::printf("cannot write %s\n", json_path);
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"bench_weights\",\n");
  std::fprintf(out, "  \"steps\": %llu,\n",
               static_cast<unsigned long long>(steps));
  std::fprintf(out, "  \"entries\": [\n");
  for (std::uint8_t c = 0; c < kWeightCodecCount; ++c) {
    const char* name = weight_codec_name(static_cast<WeightCodec>(c));
    std::fprintf(out,
                 "    {\"name\": \"micro_%s\", \"encode_ms\": %.4f, "
                 "\"decode_ms\": %.4f, \"compression_ratio\": %.3f, "
                 "\"max_abs_error\": %.6g},\n",
                 name, micro[c].encode_ms, micro[c].decode_ms,
                 micro[c].compression_ratio, micro[c].max_abs_error);
  }
  for (std::uint8_t c = 0; c < kWeightCodecCount; ++c) {
    const char* name = weight_codec_name(static_cast<WeightCodec>(c));
    std::fprintf(out,
                 "    {\"name\": \"e2e_%s\", \"wire_compression_ratio\": %.3f, "
                 "\"broadcast_p99_ms\": %.3f, \"avg_return\": %.3f, "
                 "\"broadcasts\": %llu, \"keyframes\": %llu},\n",
                 name, e2e[c].wire_compression_ratio, e2e[c].broadcast_p99_ms,
                 e2e[c].avg_return,
                 static_cast<unsigned long long>(e2e[c].broadcasts),
                 static_cast<unsigned long long>(e2e[c].keyframes));
  }
  std::fprintf(out,
               "    {\"name\": \"lazy_fp16\", \"wire_compression_ratio\": %.3f, "
               "\"skipped\": %llu, \"avg_return\": %.3f}\n",
               lazy_result.wire_compression_ratio,
               static_cast<unsigned long long>(lazy_result.skipped),
               lazy_result.avg_return);
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("\nwrote %s\n", json_path);

  return finish("bench_weights");
}
