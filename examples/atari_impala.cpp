// IMPALA on the synthetic arcade suite — the stand-in for the paper's Atari
// evaluation (see DESIGN.md: substitutions). Eight explorers stream 500-step
// fragments; the learner applies V-trace off-policy corrections and replies
// with fresh weights to exactly the explorer whose fragment it consumed.
//
// Run: ./build/examples/atari_impala [env] [steps]
//   env   one of SynthBeamRider SynthBreakout SynthQbert SynthSpaceInvaders
//   steps learner step budget (default 50000)

#include <cstdio>
#include <cstdlib>
#include <string>

#include "framework/runtime.h"

int main(int argc, char** argv) {
  const std::string env = argc > 1 ? argv[1] : "SynthBreakout";
  const std::uint64_t steps = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                       : 50'000;

  xt::AlgoSetup setup;
  setup.kind = xt::AlgoKind::kImpala;
  setup.env_name = env;
  setup.seed = 3;
  setup.impala.hidden = {128, 64};
  setup.impala.lr = 6e-4f;
  setup.impala.fragment_len = 500;  // the paper's Atari fragment size

  xt::DeploymentConfig deployment;
  deployment.explorers_per_machine = {8};
  deployment.max_steps_consumed = steps;
  deployment.max_seconds = 300.0;

  std::printf("IMPALA on %s, %llu-step budget, 8 explorers...\n", env.c_str(),
              static_cast<unsigned long long>(steps));
  xt::XingTianRuntime runtime(setup, deployment);
  const xt::RunReport report = runtime.run();

  std::printf("consumed %llu steps in %.1f s -> %.0f steps/s throughput\n",
              static_cast<unsigned long long>(report.steps_consumed),
              report.wall_seconds, report.avg_throughput);
  std::printf("avg episode return %.1f over %llu episodes\n",
              report.avg_episode_return,
              static_cast<unsigned long long>(report.episodes));
  std::printf("latency: train %.2f ms/session, actual wait %.2f ms, "
              "rollout transmission %.2f ms\n",
              report.mean_train_ms, report.mean_wait_ms,
              report.mean_transmission_ms);
  return 0;
}
