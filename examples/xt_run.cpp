// The configuration-file launcher — the C++ analogue of starting XingTian
// from its config file (paper Section 3.2.2: machines, learner placement,
// explorer counts, algorithm hyperparameters all come from the file).
//
//   ./build/examples/xt_run configs/impala_breakout.conf
//
// Sample configurations live in configs/.

#include <cstdio>

#include "framework/config_file.h"
#include "framework/runtime.h"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <config-file>\n", argv[0]);
    return 2;
  }

  std::string error;
  const auto config = xt::load_launch_config(argv[1], &error);
  if (!config) {
    std::fprintf(stderr, "%s: %s\n", argv[1], error.c_str());
    return 2;
  }

  std::printf("launching %s on %s: %d explorer(s) across %zu machine(s), "
              "learner on machine %u\n",
              xt::algo_kind_name(config->setup.kind),
              config->setup.env_name.c_str(),
              config->deployment.total_explorers(),
              config->deployment.explorers_per_machine.size(),
              config->deployment.learner_machine);

  xt::XingTianRuntime runtime(config->setup, config->deployment);
  const xt::RunReport report = runtime.run();

  std::printf("finished: %llu steps in %.1f s (%.0f steps/s), "
              "%d sessions, avg return %.2f over %llu episodes\n",
              static_cast<unsigned long long>(report.steps_consumed),
              report.wall_seconds, report.avg_throughput,
              report.training_sessions, report.avg_episode_return,
              static_cast<unsigned long long>(report.episodes));
  if (!config->deployment.stats_csv_path.empty()) {
    std::printf("statistics written to %s\n",
                config->deployment.stats_csv_path.c_str());
  }
  return 0;
}
