// DQN on CartPole with a learner-local replay buffer (the paper's Fig. 1(b)
// topology): a single explorer streams 4-step rollout messages through the
// asynchronous channel; the learner maintains the replay buffer inside its
// trainer thread and trains on sampled batches.
//
// Run: ./build/examples/cartpole_dqn [target_return]
// Stops when the rolling average episode return reaches the target
// (default 150) or after 90 seconds.

#include <cstdio>
#include <cstdlib>

#include "framework/runtime.h"

int main(int argc, char** argv) {
  const double target_return = argc > 1 ? std::atof(argv[1]) : 150.0;

  xt::AlgoSetup setup;
  setup.kind = xt::AlgoKind::kDqn;
  setup.env_name = "CartPole";
  setup.seed = 11;
  setup.dqn.hidden = {64, 64};
  setup.dqn.lr = 1e-3f;
  setup.dqn.replay_capacity = 50'000;
  setup.dqn.train_start = 1'000;     // fill the buffer before training
  setup.dqn.batch_size = 32;
  setup.dqn.train_interval_steps = 4;  // one session per 4 inserted steps
  setup.dqn.target_sync_interval = 100;
  setup.dqn.eps_decay_steps = 10'000;

  xt::DeploymentConfig deployment;
  deployment.explorers_per_machine = {1};  // basic DQN: one explorer
  deployment.max_steps_consumed = 0;       // run on the return goal instead
  deployment.max_seconds = 90.0;
  deployment.target_return = target_return;
  deployment.target_return_window = 20;

  std::printf("training DQN on CartPole until avg return >= %.0f ...\n",
              target_return);
  xt::XingTianRuntime runtime(setup, deployment);
  const xt::RunReport report = runtime.run();

  std::printf("done: avg return %.1f after %llu consumed steps, "
              "%d sessions, %.1f s wall\n",
              report.avg_episode_return,
              static_cast<unsigned long long>(report.steps_consumed),
              report.training_sessions, report.wall_seconds);
  std::printf("replay sampling stayed learner-local: mean wait before a "
              "training session was %.2f ms\n", report.mean_wait_ms);
  return report.avg_episode_return >= target_return ? 0 : 1;
}
