// Synchronous PPO with asynchronous transmission — the paper's key point
// that XingTian accelerates even *on-policy* algorithms (Section 3.2.1):
// explorers run their environments asynchronously, and a fast explorer's
// rollout transmission overlaps with slow explorers' interaction, so the
// learner's actual wait is much shorter than the total transmission time.
//
// Run: ./build/examples/ppo_sync [n_explorers] [iterations]

#include <cstdio>
#include <cstdlib>

#include "framework/runtime.h"

int main(int argc, char** argv) {
  const int n_explorers = argc > 1 ? std::atoi(argv[1]) : 10;
  const int iterations = argc > 2 ? std::atoi(argv[2]) : 20;

  xt::AlgoSetup setup;
  setup.kind = xt::AlgoKind::kPpo;
  setup.env_name = "CartPole";
  setup.seed = 17;
  setup.ppo.hidden = {64, 64};
  setup.ppo.fragment_len = 200;  // the paper's CartPole fragment size
  setup.ppo.n_explorers = static_cast<std::size_t>(n_explorers);
  setup.ppo.epochs = 4;
  setup.ppo.minibatch = 256;

  xt::DeploymentConfig deployment;
  deployment.explorers_per_machine = {n_explorers};
  deployment.max_steps_consumed =
      static_cast<std::uint64_t>(iterations) * n_explorers * 200;
  deployment.max_seconds = 180.0;

  std::printf("synchronous PPO, %d explorers x 200-step fragments, "
              "%d iterations...\n", n_explorers, iterations);
  xt::XingTianRuntime runtime(setup, deployment);
  const xt::RunReport report = runtime.run();

  std::printf("%d training iterations, %llu steps, avg return %.1f\n",
              report.training_sessions,
              static_cast<unsigned long long>(report.steps_consumed),
              report.avg_episode_return);
  std::printf("per-iteration: train %.1f ms; learner waited only %.1f ms for "
              "all %d fragments (transmission per message: %.1f ms)\n",
              report.mean_train_ms, report.mean_wait_ms, n_explorers,
              report.mean_transmission_ms);
  return 0;
}
