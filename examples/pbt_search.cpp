// Population-Based Training on XingTian (paper Section 4.3): four isolated
// populations (broker sets) sweep the learning rate; each generation the
// center scheduler eliminates the worst population and replaces it with a
// mutated clone of the best, inheriting the best population's DNN weights.
//
// Run: ./build/examples/pbt_search [generations] [seconds_per_generation]

#include <cstdio>
#include <cstdlib>

#include "pbt/pbt.h"

int main(int argc, char** argv) {
  xt::AlgoSetup base;
  base.kind = xt::AlgoKind::kImpala;
  base.env_name = "CartPole";
  base.seed = 23;
  base.impala.hidden = {32, 32};
  base.impala.fragment_len = 100;

  xt::PbtConfig config;
  config.populations = 4;
  config.generations = argc > 1 ? std::atoi(argv[1]) : 3;
  config.generation_seconds = argc > 2 ? std::atof(argv[2]) : 3.0;
  config.deployment.explorers_per_machine = {2};
  config.initial_lrs = {1e-4f, 6e-4f, 3e-3f, 1e-2f};
  config.seed = 29;

  std::printf("PBT: %d populations x %d generations (%.1f s each)\n",
              config.populations, config.generations,
              config.generation_seconds);

  const xt::PbtReport report = run_pbt(base, config);
  for (std::size_t gen = 0; gen < report.generations.size(); ++gen) {
    std::printf("generation %zu:\n", gen);
    for (const auto& member : report.generations[gen]) {
      std::printf("  rank %d: lr %.2e -> avg return %8.2f (%llu steps)%s\n",
                  member.rank, member.lr, member.avg_return,
                  static_cast<unsigned long long>(member.steps_consumed),
                  member.replaced ? "  [eliminated]" : "");
    }
  }
  std::printf("best hyperparameters: lr %.2e (avg return %.2f)\n",
              report.best_lr, report.best_return);
  return 0;
}
