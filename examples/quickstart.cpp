// Quickstart: the two faces of XingTian-CPP in ~60 lines.
//
//  1. The asynchronous communication channel on its own — the dummy DRL
//     algorithm of the paper's Section 5.1 (explorers push, learner receives
//     rounds asynchronously).
//  2. A complete DRL run — IMPALA on CartPole with two explorers, driven by
//     the decentralized runtime until the learner has consumed a step budget.
//
// Build: cmake -B build -G Ninja && cmake --build build --target quickstart
// Run:   ./build/examples/quickstart

#include <cstdio>

#include "framework/dummy_transmission.h"
#include "framework/runtime.h"

int main() {
  // ---- 1. Raw channel throughput -----------------------------------------
  xt::DummyConfig dummy;
  dummy.explorers_per_machine = {4};  // 4 explorers, single machine
  dummy.message_bytes = 1 << 20;      // 1 MB messages
  dummy.messages_per_explorer = 20;   // the paper's 20 rounds
  dummy.broker.compression.enabled = false;

  const xt::DummyResult channel = xt::run_dummy_transmission_xingtian(dummy);
  std::printf("channel: %llu messages (%.1f MB) in %.3f s -> %.1f MB/s\n",
              static_cast<unsigned long long>(channel.messages_received),
              static_cast<double>(channel.bytes_received) / 1e6,
              channel.end_to_end_seconds, channel.throughput_mbps);

  // ---- 2. A real DRL algorithm -------------------------------------------
  xt::AlgoSetup setup;
  setup.kind = xt::AlgoKind::kImpala;  // actor-critic, off-policy (V-trace)
  setup.env_name = "CartPole";
  setup.seed = 7;
  setup.impala.hidden = {32, 32};
  setup.impala.fragment_len = 100;  // steps per explorer->learner message

  xt::DeploymentConfig deployment;
  deployment.explorers_per_machine = {2};  // 2 explorers on one machine
  deployment.max_steps_consumed = 20'000;  // training goal
  deployment.max_seconds = 60.0;           // safety net

  xt::XingTianRuntime runtime(setup, deployment);
  const xt::RunReport report = runtime.run();

  std::printf("impala:  %llu steps in %.1f s (%.0f steps/s), "
              "%d train sessions, avg return %.1f over %llu episodes\n",
              static_cast<unsigned long long>(report.steps_consumed),
              report.wall_seconds, report.avg_throughput,
              report.training_sessions, report.avg_episode_return,
              static_cast<unsigned long long>(report.episodes));
  std::printf("learner: waited %.2f ms/session for rollouts "
              "(message transmission itself took %.2f ms) -- the overlap.\n",
              report.mean_wait_ms, report.mean_transmission_ms);
  return 0;
}
